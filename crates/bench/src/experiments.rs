//! One function per figure/table of the paper's evaluation (Section 7).

use crate::report::{f3, secs, Report};
use crate::Scale;
use p3c_bow::{Bow, BowConfig, BowVariant};
use p3c_core::config::{BinRuleChoice, OutlierMethod, P3cParams};
use p3c_core::mr::{P3cPlusMr, P3cPlusMrLight};
use p3c_core::p3c::P3c;
use p3c_core::p3cplus::{P3cPlus, P3cPlusLight};
use p3c_datagen::{colon_like, generate, ColonSpec, SyntheticSpec};
use p3c_dataset::Clustering;
use p3c_eval::{e4sc, label_accuracy};
use p3c_mapreduce::{Engine, MrConfig, SchedulerChoice};
use p3c_stats::PoissonTest;
use std::time::Instant;

/// The experiment parameter preset (paper Section 7.3, tuned for the
/// scaled-down data sizes: the Poisson level uses the safe small default
/// rather than the cluster-tuned 0.01, and EM is capped at 5 iterations).
fn experiment_params() -> P3cParams {
    P3cParams {
        em_max_iters: 5,
        ..P3cParams::default()
    }
}

fn engine() -> Engine {
    Engine::new(MrConfig {
        num_reducers: 8,
        split_size: 8192,
        ..MrConfig::default()
    })
}

fn spec(scale: &Scale, n: usize, k: usize, noise: f64, seed_off: u64) -> SyntheticSpec {
    SyntheticSpec {
        n,
        d: scale.dims,
        num_clusters: k,
        noise_fraction: noise,
        max_cluster_dims: 10.min(scale.dims),
        seed: scale.seed + seed_off,
        ..SyntheticSpec::default()
    }
}

// ------------------------------------------------------------------ fig1 --

/// Figure 1: the power of the Poisson significance test against a fixed
/// 1% relative deviation, for growing µ — the probability that a
/// hyperrectangle holding 101%·µ objects is flagged as significant. The
/// saturation of this curve motivates the effect-size test.
pub fn fig1(_scale: &Scale) -> Report {
    let alpha = 0.01;
    let mut report = Report::new(
        "fig1",
        "Power of the Poisson test at a fixed 1% deviation (α = 0.01)",
        &["mu", "P(reject H0; true mean = 1.01µ)"],
    );
    for &mu in &[
        100.0,
        1_000.0,
        5_000.0,
        10_000.0,
        25_000.0,
        50_000.0,
        100_000.0,
        250_000.0,
        500_000.0f64,
    ] {
        // Critical value: smallest k with P(X ≥ k | µ) < α.
        let mut crit = mu.ceil();
        while PoissonTest::tail_prob_exact(crit, mu) >= alpha {
            crit += (mu.sqrt() * 0.05).max(1.0).floor();
        }
        // Power: probability that Poisson(1.01µ) reaches the critical value.
        let power = PoissonTest::tail_prob_exact(crit, 1.01 * mu);
        report.push_row(vec![format!("{mu:.0}"), f3(power)]);
    }
    report.push_note(
        "Paper Figure 1: the power approaches 1 for large data sets, so a 1% \
         deviation is always 'significant' — hence P3C+'s effect-size test.",
    );
    report
}

// ------------------------------------------------------------------ fig4 --

/// Figure 4: E4SC of naive vs MVB outlier detection across DB sizes,
/// noise levels 5/10/20 % and 3/5/7 clusters.
pub fn fig4(scale: &Scale) -> Report {
    let mut report = Report::new(
        "fig4",
        "Naive vs MVB outlier detection (E4SC, higher is better)",
        &[
            "noise",
            "clusters",
            "db_size",
            "E4SC naive",
            "E4SC MVB",
            "E4SC MCD (ext)",
        ],
    );
    let sizes = [scale.size(10_000), scale.size(30_000), scale.size(100_000)];
    for &noise in &[0.05, 0.10, 0.20] {
        for &k in &[3usize, 5, 7] {
            for &n in &sizes {
                let data = generate(&spec(scale, n, k, noise, k as u64));
                let naive = P3cPlus::new(P3cParams {
                    outlier: OutlierMethod::Naive,
                    ..experiment_params()
                })
                .cluster(&data.dataset);
                let mvb = P3cPlus::new(P3cParams {
                    outlier: OutlierMethod::Mvb,
                    ..experiment_params()
                })
                .cluster(&data.dataset);
                let mcd = P3cPlus::new(P3cParams {
                    outlier: OutlierMethod::Mcd,
                    ..experiment_params()
                })
                .cluster(&data.dataset);
                report.push_row(vec![
                    format!("{:.0}%", noise * 100.0),
                    k.to_string(),
                    n.to_string(),
                    f3(e4sc(&naive.clustering, &data.ground_truth)),
                    f3(e4sc(&mvb.clustering, &data.ground_truth)),
                    f3(e4sc(&mcd.clustering, &data.ground_truth)),
                ]);
            }
        }
    }
    report.push_note("Paper Figure 4: MVB beats naive OD in nearly every cell.");
    report.push_note(
        "The MCD column is this repo's extension — the concentration-based \
         robust estimator the paper leaves unevaluated (end of Section 7.4.1).",
    );
    report
}

// ------------------------------------------------------------------ fig5 --

/// Figure 5: number of cluster cores vs Poisson threshold, for the plain
/// Poisson test and the Combined (Poisson + effect size) test, with and
/// without redundancy filtering. 5 hidden clusters, 20 % noise.
pub fn fig5(scale: &Scale) -> Report {
    let mut report = Report::new(
        "fig5",
        "Cluster cores vs Poisson threshold (5 hidden clusters, 20% noise)",
        &[
            "db_size",
            "threshold",
            "poisson (no filter)",
            "combined (no filter)",
            "poisson (filtered)",
            "combined (filtered)",
        ],
    );
    let thresholds: [f64; 8] = [1e-140, 1e-100, 1e-80, 1e-60, 1e-40, 1e-20, 1e-5, 1e-3];
    for &n in &[scale.size(10_000), scale.size(50_000)] {
        let data = generate(&spec(scale, n, 5, 0.2, 55));
        for &alpha in &thresholds {
            let mut cells = vec![n.to_string(), format!("{alpha:.0e}")];
            let mut filtered = Vec::new();
            for use_effect in [false, true] {
                let params = P3cParams {
                    alpha_poisson: alpha,
                    use_effect_size: use_effect,
                    ..experiment_params()
                };
                let result = P3cPlusLight::new(params).cluster(&data.dataset);
                // maximal = before the redundancy filter; cores = after.
                cells.push(result.stats.core_gen.maximal.to_string());
                filtered.push(result.stats.cores.to_string());
            }
            cells.extend(filtered);
            report.push_row(cells);
        }
    }
    report.push_note(
        "Paper Figure 5: the plain Poisson test overestimates cores at loose \
         thresholds, worse for larger data; the combined test stabilizes, and \
         redundancy filtering pins the count at the number of hidden clusters.",
    );
    report
}

// ------------------------------------------------------------------ fig6 --

/// The four large-scale competitors of Figures 6–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    BowLight,
    BowMvb,
    MrLight,
    MrMvb,
    MrNaive,
}

impl Algo {
    pub fn label(self) -> &'static str {
        match self {
            Algo::BowLight => "BoW (Light)",
            Algo::BowMvb => "BoW (MVB)",
            Algo::MrLight => "MR (Light)",
            Algo::MrMvb => "MR (MVB)",
            Algo::MrNaive => "MR (Naive)",
        }
    }
}

/// Runs one algorithm on a dataset, returning the clustering and runtime.
pub fn run_algo(
    algo: Algo,
    data: &p3c_dataset::Dataset,
    sample_size: usize,
) -> (Clustering, std::time::Duration) {
    let eng = engine();
    let start = Instant::now();
    let clustering = run_scheduled(algo, &eng, data, sample_size, SchedulerChoice::Serial);
    (clustering, start.elapsed())
}

/// Runs one algorithm on an existing engine under the given scheduler, so
/// callers can inspect the engine's metrics ledger afterwards.
fn run_scheduled(
    algo: Algo,
    eng: &Engine,
    data: &p3c_dataset::Dataset,
    sample_size: usize,
    scheduler: SchedulerChoice,
) -> Clustering {
    match algo {
        Algo::BowLight | Algo::BowMvb => {
            let variant = if algo == Algo::BowLight {
                BowVariant::Light
            } else {
                BowVariant::Mvb
            };
            let config = BowConfig {
                num_partitions: 8,
                sample_size,
                variant,
                params: experiment_params(),
                ..BowConfig::default()
            };
            Bow::new(eng, config)
                .cluster_with(data, scheduler)
                .expect("bow run")
                .clustering
        }
        Algo::MrLight => {
            P3cPlusMrLight::new(eng, experiment_params())
                .cluster_with(data, scheduler)
                .expect("mr light run")
                .clustering
        }
        Algo::MrMvb => {
            P3cPlusMr::new(
                eng,
                P3cParams {
                    outlier: OutlierMethod::Mvb,
                    ..experiment_params()
                },
            )
            .cluster_with(data, scheduler)
            .expect("mr mvb run")
            .clustering
        }
        Algo::MrNaive => {
            P3cPlusMr::new(
                eng,
                P3cParams {
                    outlier: OutlierMethod::Naive,
                    ..experiment_params()
                },
            )
            .cluster_with(data, scheduler)
            .expect("mr naive run")
            .clustering
        }
    }
}

/// Figure 6: E4SC of BoW (Light/MVB) vs P3C+-MR (Light/MVB) across
/// database sizes, cluster counts 3/5/7 and noise 0/5/10/20 %.
pub fn fig6(scale: &Scale) -> Report {
    let mut report = Report::new(
        "fig6",
        "Quality (E4SC) of BoW vs P3C+-MR across sizes, clusters and noise",
        &[
            "clusters",
            "noise",
            "db_size",
            "BoW (Light)",
            "BoW (MVB)",
            "MR (Light)",
            "MR (MVB)",
        ],
    );
    let sizes = [scale.size(10_000), scale.size(30_000), scale.size(100_000)];
    let sample = scale.size(2_000);
    // Each cell averages over several dataset draws: with one draw a
    // single unlucky geometry (e.g. the redundancy filter merging the
    // forced-overlap pair) pins an entire curve.
    let seeds_per_cell: u64 = 3;
    for &k in &[3usize, 5, 7] {
        for &noise in &[0.0, 0.05, 0.10, 0.20] {
            for &n in &sizes {
                let mut cells = vec![
                    k.to_string(),
                    format!("{:.0}%", noise * 100.0),
                    n.to_string(),
                ];
                for algo in [Algo::BowLight, Algo::BowMvb, Algo::MrLight, Algo::MrMvb] {
                    let mut total = 0.0;
                    for rep in 0..seeds_per_cell {
                        let data = generate(&spec(scale, n, k, noise, 100 + k as u64 + 31 * rep));
                        let (clustering, _) = run_algo(algo, &data.dataset, sample);
                        total += e4sc(&clustering, &data.ground_truth);
                    }
                    cells.push(f3(total / seeds_per_cell as f64));
                }
                report.push_row(cells);
            }
        }
    }
    report.push_note(
        "Paper Figure 6: the Light variants beat their MVB counterparts; \
         MR (Light) improves (or holds) with growing size while the others decay.",
    );
    report
}

// ------------------------------------------------------------------ fig7 --

/// Figure 7: runtimes of the five algorithm variants vs database size.
pub fn fig7(scale: &Scale) -> Report {
    let mut report = Report::new(
        "fig7",
        "Runtime (seconds) vs database size (5 clusters, 10% noise)",
        &[
            "db_size",
            "BoW (Light)",
            "BoW (MVB)",
            "MR (Light)",
            "MR (MVB)",
            "MR (Naive)",
        ],
    );
    let sizes = [
        scale.size(10_000),
        scale.size(30_000),
        scale.size(100_000),
        scale.size(200_000),
    ];
    let sample = scale.size(2_000);
    for &n in &sizes {
        let data = generate(&spec(scale, n, 5, 0.10, 7));
        let mut cells = vec![n.to_string()];
        for algo in [
            Algo::BowLight,
            Algo::BowMvb,
            Algo::MrLight,
            Algo::MrMvb,
            Algo::MrNaive,
        ] {
            let (_, elapsed) = run_algo(algo, &data.dataset, sample);
            cells.push(secs(elapsed));
        }
        report.push_row(cells);
    }
    report.push_note(
        "Paper Figure 7: BoW scales linearly; P3C+-MR is slowest (EM job \
         chain); MVB adds 10–20% over naive; MR-Light is competitive with \
         BoW (Light).",
    );
    report
}

// ------------------------------------------------------------------ huge --

/// Section 7.5.2's 'one billion points' experiment, scaled: BoW (Light)
/// vs P3C+-MR-Light on the largest data set (paper: 9500 s vs 4300 s).
pub fn huge(scale: &Scale) -> Report {
    let mut report = Report::new(
        "huge",
        "Largest-set head-to-head: BoW (Light) vs P3C+-MR-Light",
        &["algorithm", "db_size", "dims", "runtime_s", "clusters"],
    );
    let n = scale.size(400_000);
    let dims = (scale.dims * 2).max(20);
    let data = generate(&SyntheticSpec {
        n,
        d: dims,
        num_clusters: 5,
        noise_fraction: 0.05,
        max_cluster_dims: 10.min(dims),
        seed: scale.seed + 999,
        ..SyntheticSpec::default()
    });
    // The paper's BoW setting: 100k samples per reducer. At this
    // (scaled) n that pushes BoW into its CPU-bound regime — the
    // per-reducer serial clustering the paper identifies as BoW's
    // bottleneck on the billion-point set.
    let sample = 100_000;
    for algo in [Algo::BowLight, Algo::MrLight] {
        let (clustering, elapsed) = run_algo(algo, &data.dataset, sample);
        report.push_row(vec![
            algo.label().to_string(),
            n.to_string(),
            dims.to_string(),
            secs(elapsed),
            clustering.num_clusters().to_string(),
        ]);
    }
    report.push_note(
        "Paper: on 10⁹ points × 100 dims, BoW (Light) needed >9500 s and \
         P3C+-MR-Light ≈4300 s. Scaled stand-in (DESIGN.md §1).",
    );
    report
}

// ----------------------------------------------------------------- colon --

/// Section 7.6: P3C vs P3C+ accuracy on the colon-cancer-like data set
/// (paper: 67 % vs 71 % on the real microarray data).
pub fn colon(scale: &Scale) -> Report {
    let mut report = Report::new(
        "colon",
        "Label accuracy on the colon-cancer-like data (62 × 2000), mean of 5 draws",
        &["algorithm", "accuracy (mean)", "min", "max"],
    );
    // With only 62 samples the result is draw-sensitive (the paper had
    // one fixed real data set); average over several generator seeds.
    let mut acc_p3c = Vec::new();
    let mut acc_plus = Vec::new();
    for seed in (0..5).map(|i| scale.seed + i) {
        let data = colon_like(&ColonSpec {
            seed,
            ..ColonSpec::default()
        });
        // Tiny n, huge d: loosen the Poisson level the way the original
        // P3C evaluation does for microarray data.
        let p3c = P3c::new(1e-4).cluster(&data.dataset);
        // Both algorithms use Sturges bins here: at n = 62 the FD rule is
        // *coarser* than Sturges (4 vs 7 bins) — its large-n advantage is
        // irrelevant — so fixing the discretization isolates the P3C+
        // model changes (combined test, redundancy filter, MVB, AI
        // proving), which is what Section 7.6 compares.
        let p3cplus = P3cPlus::new(P3cParams {
            alpha_poisson: 1e-4,
            em_max_iters: 5,
            bin_rule: BinRuleChoice::Sturges,
            ..P3cParams::default()
        })
        .cluster(&data.dataset);
        acc_p3c.push(label_accuracy(&p3c.clustering, &data.labels));
        acc_plus.push(label_accuracy(&p3cplus.clustering, &data.labels));
    }
    for (name, accs) in [("P3C", acc_p3c), ("P3C+", acc_plus)] {
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        let min = accs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = accs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        report.push_row(vec![name.to_string(), f3(mean), f3(min), f3(max)]);
    }
    report.push_note(
        "Paper Section 7.6: 67% (P3C) vs 71% (P3C+) on the real UCI set; \
         synthetic stand-in, see DESIGN.md §1.",
    );
    report
}

// ------------------------------------------------------------ stragglers --

/// Engine-level ablation: straggling map tasks with and without
/// speculative execution (Hadoop's backup tasks; Dean & Ghemawat §3.6 —
/// the error-tolerance feature Section 2 credits MapReduce with).
pub fn stragglers(_scale: &Scale) -> Report {
    use p3c_mapreduce::fault::StragglerPlan;
    use p3c_mapreduce::Emitter;
    let mut report = Report::new(
        "stragglers",
        "Straggler injection vs speculative execution (histogram job, 24 tasks)",
        &["straggler rate", "speculation", "wall_s", "backups won"],
    );
    let input: Vec<u64> = (0..24_000).collect();
    let mapper = |r: &u64, out: &mut Emitter<u64, u64>| out.emit(r % 64, 1);
    let reducer = |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| {
        out.push((*k, vs.into_iter().sum()));
    };
    for &rate in &[0.0, 0.1, 0.3] {
        for speculative in [false, true] {
            let engine = Engine::new(MrConfig {
                split_size: 1_000,
                threads: 8,
                straggler: (rate > 0.0).then(|| StragglerPlan::new(rate, 400, 11)),
                speculative,
                ..MrConfig::default()
            });
            let start = Instant::now();
            let res = engine
                .run("straggle-bench", &input, &mapper, &reducer)
                .expect("job");
            report.push_row(vec![
                format!("{:.0}%", rate * 100.0),
                if speculative { "on" } else { "off" }.to_string(),
                secs(start.elapsed()),
                res.metrics.speculative_wins.to_string(),
            ]);
        }
    }
    report.push_note(
        "Without speculation the job waits out every 400 ms straggler; with          it, idle workers commit backups and cancel the stragglers.",
    );
    report
}

// ------------------------------------------------------------------- dag --

/// Scheduler ablation: every large-scale pipeline run job-by-job (serial)
/// vs on the DAG scheduler with materialized datasets — wall time, the
/// number of jobs observed executing concurrently, and how often a
/// materialized dataset was served from the in-memory cache.
pub fn dag(scale: &Scale) -> Report {
    let mut report = Report::new(
        "dag",
        "Serial vs DAG scheduler (5 clusters, 10% noise)",
        &[
            "algorithm",
            "serial_s",
            "dag_s",
            "max concurrent jobs",
            "cache hits",
            "output vs serial",
        ],
    );
    let n = scale.size(30_000);
    let data = generate(&spec(scale, n, 5, 0.10, 7));
    let sample = scale.size(2_000);
    for algo in [Algo::MrLight, Algo::MrMvb, Algo::BowLight] {
        let serial_eng = engine();
        let start = Instant::now();
        let serial = run_scheduled(
            algo,
            &serial_eng,
            &data.dataset,
            sample,
            SchedulerChoice::Serial,
        );
        let serial_wall = start.elapsed();

        let dag_eng = engine();
        let start = Instant::now();
        let dagged = run_scheduled(algo, &dag_eng, &data.dataset, sample, SchedulerChoice::Dag);
        let dag_wall = start.elapsed();

        let metrics = dag_eng.cluster_metrics();
        let hwm = metrics
            .dag_runs()
            .iter()
            .map(|d| d.concurrency_high_water)
            .max()
            .unwrap_or(0);
        let hits: u64 = metrics.dag_runs().iter().map(|d| d.cache_hits).sum();
        let verdict = if serial == dagged {
            "identical".to_string()
        } else {
            format!("k={}/{}", serial.num_clusters(), dagged.num_clusters())
        };
        report.push_row(vec![
            algo.label().to_string(),
            secs(serial_wall),
            secs(dag_wall),
            hwm.to_string(),
            hits.to_string(),
            verdict,
        ]);
    }
    report.push_note(
        "The P3C+-MR pipelines are byte-identical under both schedulers; BoW \
         merges per-partition rectangles in a different (but fixed) order on \
         the DAG, so only cluster counts are compared there.",
    );
    report
}

// -------------------------------------------------------------- measures --

/// Section 7.2: the four external measures side by side on one setting.
/// The paper computes E4SC, F1, RNIA and CE but reports only E4SC,
/// arguing F1 is blind to wrong subspaces and CE over-punishes splits;
/// this table lets the reader verify those relationships.
pub fn measures(scale: &Scale) -> Report {
    use p3c_eval::{ce, f1_object, rnia};
    let mut report = Report::new(
        "measures",
        "E4SC vs F1 vs RNIA vs CE (5 clusters, 10% noise)",
        &["algorithm", "E4SC", "F1", "RNIA", "CE"],
    );
    let n = scale.size(30_000);
    let data = generate(&spec(scale, n, 5, 0.10, 7));
    let sample = scale.size(2_000);
    for algo in [Algo::BowLight, Algo::BowMvb, Algo::MrLight, Algo::MrMvb] {
        let (clustering, _) = run_algo(algo, &data.dataset, sample);
        report.push_row(vec![
            algo.label().to_string(),
            f3(e4sc(&clustering, &data.ground_truth)),
            f3(f1_object(&clustering, &data.ground_truth)),
            f3(rnia(&clustering, &data.ground_truth)),
            f3(ce(&clustering, &data.ground_truth)),
        ]);
    }
    report.push_note(
        "Paper Section 7.2: F1 ≥ E4SC (it cannot punish wrong subspaces),          CE ≤ RNIA (one-to-one matching punishes splits), and the E4SC          ordering is the one the paper reports.",
    );
    report
}

// ------------------------------------------------------------------ bins --

/// Section 4.1.1 ablation: Sturges vs Freedman–Diaconis binning.
pub fn bins(scale: &Scale) -> Report {
    let mut report = Report::new(
        "bins",
        "Sturges vs Freedman–Diaconis vs exact-IQR FD binning (P3C+-Light, narrow clusters)",
        &[
            "db_size",
            "bins sturges",
            "bins fd",
            "bins fd-iqr (max)",
            "E4SC sturges",
            "E4SC fd",
            "E4SC fd-iqr",
        ],
    );
    for &base in &[10_000usize, 50_000, 100_000] {
        let n = scale.size(base);
        // The regime Section 4.1.1 targets: clusters narrower than a
        // Sturges bin, which oversmoothing hides or merges.
        let data = generate(&SyntheticSpec {
            min_width: 0.02,
            max_width: 0.05,
            ..spec(scale, n, 5, 0.10, 17)
        });
        let mut cells = vec![n.to_string()];
        let mut quality = Vec::new();
        for rule in [
            BinRuleChoice::Sturges,
            BinRuleChoice::FreedmanDiaconis,
            BinRuleChoice::FreedmanDiaconisIqr,
        ] {
            let params = P3cParams {
                bin_rule: rule,
                ..experiment_params()
            };
            let result = P3cPlusLight::new(params).cluster(&data.dataset);
            cells.push(result.stats.bins.to_string());
            quality.push(f3(e4sc(&result.clustering, &data.ground_truth)));
        }
        cells.extend(quality);
        report.push_row(cells);
    }
    report.push_note(
        "Paper Section 4.1.1 claims FD's finer bins improve accuracy on \
         large n; the fd-iqr column is this repo's extension computing the \
         exact per-attribute IQR the paper skips as too expensive.",
    );
    report
}

// --------------------------------------------------------------- kernels --

/// Times one pass of `f` per repetition and returns the best wall time.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> std::time::Duration {
    let mut best = std::time::Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// The old shuffle partitioner: per-process-seeded SipHash via std's
/// `DefaultHasher`. Kept here (not in the engine) purely as the
/// before-side of the `kernels` microbenchmark.
fn sip_partition<K: std::hash::Hash>(key: &K, parts: usize) -> usize {
    use std::hash::Hasher as _;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % parts as u64) as usize
}

/// Microbenchmarks the three allocation-free kernels of the columnar
/// data plane against their row-oriented / allocating predecessors:
/// the EM E-step (responsibilities over the A_rel projection), histogram
/// binning, and the shuffle hash partitioner. Emits `BENCH_kernels.json`
/// with the before/after numbers.
pub fn kernels(scale: &Scale) -> Report {
    use p3c_core::em::{Component, MixtureModel};
    use p3c_core::histogram::{build_histograms_columnar, build_histograms_per_attr};
    use p3c_linalg::Matrix;
    use std::hint::black_box;

    let mut report = Report::new(
        "BENCH_kernels",
        "Allocation-free kernels vs row-oriented baselines",
        &["kernel", "unit", "baseline", "optimized", "speedup"],
    );
    let n = scale.size(100_000);
    let d = 20;
    let reps = 9;
    let data = generate(&SyntheticSpec {
        n,
        d,
        num_clusters: 5,
        noise_fraction: 0.10,
        seed: scale.seed,
        ..SyntheticSpec::default()
    })
    .dataset;
    // The row-oriented baselines iterate owned per-row vectors — the
    // pre-columnar storage layout.
    let owned: Vec<Vec<f64>> = data.rows().map(|r| r.to_vec()).collect();
    let refs: Vec<&[f64]> = owned.iter().map(|r| r.as_slice()).collect();

    // EM E-step: k = 5 unit-covariance components over a 10-attribute
    // A_rel. Baseline: project-per-row allocation + per-component
    // allocating density calls (the pre-optimization shape of `em_fit`).
    // Optimized: one flat A_rel projection + scratch-buffer kernel.
    let arel: Vec<usize> = (0..d).step_by(2).collect();
    let k = 5;
    let components: Vec<Component> = (0..k)
        .map(|c| Component {
            mean: arel.iter().map(|&a| data.get(c * (n / k), a)).collect(),
            cov: Matrix::identity(arel.len()),
            weight: 1.0 / k as f64,
        })
        .collect();
    let model = MixtureModel {
        arel: arel.clone(),
        components,
    };
    let eval = model.evaluator();
    // The baseline's per-component state reproduces the *historical*
    // density path inline — allocating `diff` collect, allocating
    // forward substitution, and per-element division by `L_ii` (today's
    // `Cholesky` precomputes reciprocals, which the old code did not
    // have) — so the baseline keeps the pre-optimization cost profile
    // even as the product `Cholesky` improves.
    fn old_cholesky(a: &Matrix) -> Vec<f64> {
        let nn = a.rows();
        let mut l = vec![0.0; nn * nn];
        for i in 0..nn {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[i * nn + k] * l[j * nn + k];
                }
                l[i * nn + j] = if i == j {
                    sum.sqrt()
                } else {
                    sum / l[j * nn + j]
                };
            }
        }
        l
    }
    #[allow(clippy::needless_range_loop)] // historical indexed form
    fn old_mahalanobis_sq(l: &[f64], nn: usize, diff: &[f64]) -> f64 {
        let mut y = vec![0.0; nn];
        for i in 0..nn {
            let mut sum = diff[i];
            for k in 0..i {
                sum -= l[i * nn + k] * y[k];
            }
            y[i] = sum / l[i * nn + i];
        }
        y.iter().map(|v| v * v).sum()
    }
    let old_comps: Vec<(Vec<f64>, Vec<f64>, f64)> = model
        .components
        .iter()
        .map(|c| {
            let l = old_cholesky(&c.cov);
            let sub = arel.len();
            let log_det: f64 = (0..sub).map(|i| l[i * sub + i].ln()).sum::<f64>() * 2.0;
            let log_norm =
                c.weight.ln() - 0.5 * (sub as f64 * (2.0 * std::f64::consts::PI).ln() + log_det);
            (c.mean.clone(), l, log_norm)
        })
        .collect();

    let base = best_of(reps, || {
        let mut acc = 0.0;
        let mut resp: Vec<f64> = Vec::with_capacity(k);
        for row in &owned {
            let x: Vec<f64> = arel.iter().map(|&a| row[a]).collect();
            resp.clear();
            resp.extend(old_comps.iter().map(|(mean, l, log_norm)| {
                let diff: Vec<f64> = x.iter().zip(mean).map(|(v, m)| v - m).collect();
                log_norm - 0.5 * old_mahalanobis_sq(l, arel.len(), &diff)
            }));
            let max = resp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in resp.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in resp.iter_mut() {
                *v /= sum;
            }
            acc += max + sum.ln();
            black_box(&resp);
        }
        black_box(acc);
    });
    // The columnar `em_fit` gathers the A_rel sub-matrix once per fit
    // and reuses it across every EM iteration (the old code re-projected
    // each row on each iteration, which the baseline above still pays),
    // so the per-iteration E-step is timed over the prebuilt projection.
    let sub = arel.len();
    let mut proj = Vec::with_capacity(n * sub);
    for row in data.rows() {
        proj.extend(arel.iter().map(|&a| row[a]));
    }
    let opt = best_of(reps, || {
        let mut dens = Vec::new();
        let mut y = Vec::new();
        let mut acc = 0.0;
        for chunk in proj.chunks(128 * sub) {
            eval.log_densities_block(chunk, &mut dens, &mut y);
            for resp in dens.chunks_exact_mut(k) {
                acc += p3c_core::em::softmax_in_place(resp);
            }
        }
        black_box(acc);
    });
    let em_speedup = base.as_secs_f64() / opt.as_secs_f64();
    report.push_row(vec![
        "EM E-step".into(),
        "ns/point".into(),
        format!("{:.0}", base.as_secs_f64() * 1e9 / n as f64),
        format!("{:.0}", opt.as_secs_f64() * 1e9 / n as f64),
        format!("{em_speedup:.2}x"),
    ]);

    // The *full* E-step `em_fit` now runs — densities, responsibilities
    // and moment accumulation — as the block-parallel `estep_blocked`
    // kernel on the engine worker pool, vs the row-oriented
    // pre-columnar E-step doing the same work: per-row projection and
    // density allocs, plus the indexed bounds-checked scatter push the
    // accumulator had before its iterator rewrite (reproduced inline so
    // the baseline keeps the historical shape).
    struct OldAcc {
        linear: Vec<f64>,
        scatter: Vec<f64>,
        weight: f64,
        weight_sq: f64,
        count: u64,
    }
    impl OldAcc {
        fn new(dim: usize) -> Self {
            OldAcc {
                linear: vec![0.0; dim],
                scatter: vec![0.0; dim * dim],
                weight: 0.0,
                weight_sq: 0.0,
                count: 0,
            }
        }
        #[allow(clippy::needless_range_loop)] // historical indexed form
        fn push(&mut self, x: &[f64], w: f64) {
            let dim = self.linear.len();
            for (li, &xi) in self.linear.iter_mut().zip(x) {
                *li += w * xi;
            }
            for i in 0..dim {
                let wxi = w * x[i];
                for j in 0..dim {
                    self.scatter[i * dim + j] += wxi * x[j];
                }
            }
            self.weight += w;
            self.weight_sq += w * w;
            self.count += 1;
        }
    }
    let full_base = best_of(reps, || {
        let mut accs: Vec<OldAcc> = (0..k).map(|_| OldAcc::new(sub)).collect();
        let mut resp: Vec<f64> = Vec::with_capacity(k);
        let mut acc = 0.0;
        for row in &owned {
            let x: Vec<f64> = arel.iter().map(|&a| row[a]).collect();
            resp.clear();
            resp.extend(old_comps.iter().map(|(mean, l, log_norm)| {
                let diff: Vec<f64> = x.iter().zip(mean).map(|(v, m)| v - m).collect();
                log_norm - 0.5 * old_mahalanobis_sq(l, arel.len(), &diff)
            }));
            let max = resp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in resp.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in resp.iter_mut() {
                *v /= sum;
            }
            acc += max + sum.ln();
            for (c, &r) in resp.iter().enumerate() {
                if r > 1e-12 {
                    accs[c].push(&x, r);
                }
            }
        }
        black_box((accs, acc));
    });
    let par1 = best_of(reps, || {
        black_box(p3c_core::em::estep_blocked(&eval, &proj, 1));
    });
    let par8 = best_of(reps, || {
        black_box(p3c_core::em::estep_blocked(&eval, &proj, 8));
    });
    let (_, ll1) = p3c_core::em::estep_blocked(&eval, &proj, 1);
    let (_, ll8) = p3c_core::em::estep_blocked(&eval, &proj, 8);
    assert_eq!(
        ll1.to_bits(),
        ll8.to_bits(),
        "parallel E-step not bit-identical across thread counts"
    );
    let em_par_speedup = full_base.as_secs_f64() / par8.as_secs_f64();
    for (label, wall) in [("1 worker", par1), ("8 workers", par8)] {
        report.push_row(vec![
            format!("EM E-step full, pool ({label})"),
            "ns/point".into(),
            format!("{:.0}", full_base.as_secs_f64() * 1e9 / n as f64),
            format!("{:.0}", wall.as_secs_f64() * 1e9 / n as f64),
            format!("{:.2}x", full_base.as_secs_f64() / wall.as_secs_f64()),
        ]);
    }

    // Lane-batched (8-wide) blocked E-step vs the scalar blocked kernel
    // — both sides the *current* code, pinned explicitly via
    // `estep_blocked_with_lanes` so the comparison is independent of
    // the `P3C_LANES` default. Outputs are bit-identical (asserted).
    use p3c_core::em::estep_blocked_with_lanes;
    let mut lane_speedup_1w = 0.0;
    for (label, threads) in [("1 worker", 1usize), ("8 workers", 8)] {
        let scalar = best_of(reps, || {
            black_box(estep_blocked_with_lanes(&eval, &proj, threads, false));
        });
        let lanes = best_of(reps, || {
            black_box(estep_blocked_with_lanes(&eval, &proj, threads, true));
        });
        let (_, ll_s) = estep_blocked_with_lanes(&eval, &proj, threads, false);
        let (_, ll_l) = estep_blocked_with_lanes(&eval, &proj, threads, true);
        assert_eq!(
            ll_s.to_bits(),
            ll_l.to_bits(),
            "lane E-step not bit-identical to scalar at {threads} threads"
        );
        let speedup = scalar.as_secs_f64() / lanes.as_secs_f64();
        if threads == 1 {
            lane_speedup_1w = speedup;
        }
        report.push_row(vec![
            format!("EM E-step, lanes vs scalar blocked ({label})"),
            "ns/point".into(),
            format!("{:.0}", scalar.as_secs_f64() * 1e9 / n as f64),
            format!("{:.0}", lanes.as_secs_f64() * 1e9 / n as f64),
            format!("{speedup:.2}x"),
        ]);
    }

    // Histogram binning: per-row dispatch across d histograms vs one
    // strided column scan per attribute over the flat buffer.
    let bins_per_attr = vec![10usize; d];
    let base = best_of(reps, || {
        black_box(build_histograms_per_attr(&refs, &bins_per_attr));
    });
    let opt = best_of(reps, || {
        black_box(build_histograms_columnar(
            n,
            d,
            data.as_slice(),
            &bins_per_attr,
        ));
    });
    assert_eq!(
        build_histograms_per_attr(&refs, &bins_per_attr),
        build_histograms_columnar(n, d, data.as_slice(), &bins_per_attr),
        "binning kernels disagree"
    );
    report.push_row(vec![
        "histogram binning".into(),
        "ns/value".into(),
        format!("{:.1}", base.as_secs_f64() * 1e9 / (n * d) as f64),
        format!("{:.1}", opt.as_secs_f64() * 1e9 / (n * d) as f64),
        format!("{:.2}x", base.as_secs_f64() / opt.as_secs_f64()),
    ]);

    // The column scan on the worker pool (8 workers), vs the same
    // per-row baseline; output is bit-identical to the serial scan.
    let hist8 = best_of(reps, || {
        black_box(p3c_core::histogram::build_histograms_columnar_threads(
            n,
            d,
            data.as_slice(),
            &bins_per_attr,
            8,
        ));
    });
    assert_eq!(
        build_histograms_columnar(n, d, data.as_slice(), &bins_per_attr),
        p3c_core::histogram::build_histograms_columnar_threads(
            n,
            d,
            data.as_slice(),
            &bins_per_attr,
            8
        ),
        "parallel binning not bit-identical to serial"
    );
    report.push_row(vec![
        "histogram binning, pool (8 workers)".into(),
        "ns/value".into(),
        format!("{:.1}", base.as_secs_f64() * 1e9 / (n * d) as f64),
        format!("{:.1}", hist8.as_secs_f64() * 1e9 / (n * d) as f64),
        format!("{:.2}x", base.as_secs_f64() / hist8.as_secs_f64()),
    ]);
    let hist_scaling = opt.as_secs_f64() / hist8.as_secs_f64();

    // Shuffle partitioner: std SipHash (`DefaultHasher`, the old engine
    // partitioner) vs the seeded word-at-a-time stable hash.
    let keys: Vec<(u64, u64)> = (0..(4 * n) as u64).map(|i| (i % 997, i)).collect();
    let base = best_of(reps, || {
        let mut acc = 0usize;
        for key in &keys {
            acc = acc.wrapping_add(sip_partition(key, 64));
        }
        black_box(acc);
    });
    let opt = best_of(reps, || {
        let mut acc = 0usize;
        for key in &keys {
            acc = acc.wrapping_add(p3c_mapreduce::stable_partition(key, 64));
        }
        black_box(acc);
    });
    report.push_row(vec![
        "shuffle partition".into(),
        "ns/key".into(),
        format!("{:.1}", base.as_secs_f64() * 1e9 / keys.len() as f64),
        format!("{:.1}", opt.as_secs_f64() * 1e9 / keys.len() as f64),
        format!("{:.2}x", base.as_secs_f64() / opt.as_secs_f64()),
    ]);

    // End-to-end shuffle throughput through the engine fast path
    // (exact-capacity buckets + run-length reduce grouping); no
    // in-process baseline survives to compare against, so this row
    // tracks absolute throughput across PRs instead.
    use p3c_mapreduce::Emitter;
    let records: Vec<u64> = (0..(4 * n) as u64).collect();
    let mapper = |r: &u64, out: &mut Emitter<u64, u64>| out.emit(r % 512, 1);
    let reducer = |key: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| {
        out.push((*key, vs.into_iter().sum()));
    };
    let eng = Engine::new(MrConfig {
        split_size: 50_000,
        threads: 8,
        ..MrConfig::default()
    });
    let wall = best_of(reps, || {
        black_box(
            eng.run("kernels-shuffle", &records, &mapper, &reducer)
                .expect("job"),
        );
    });
    report.push_row(vec![
        "engine map+shuffle+reduce".into(),
        "Mrec/s".into(),
        "-".into(),
        format!("{:.1}", records.len() as f64 / wall.as_secs_f64() / 1e6),
        "-".into(),
    ]);

    report.push_note(format!(
        "n = {n}, d = {d}, best of {reps} runs; EM E-step over a \
         10-attribute A_rel with 5 components."
    ));
    report.push_note(
        "Baselines reproduce the pre-columnar code shape: owned row \
         vectors, per-row projection allocs, per-component density \
         allocs, SipHash partitioning.",
    );
    report.push_note(
        "Binning is bin-index-conversion-bound. The optimized side is \
         the single-pass flat-buffer scan (p3c_stats::bin_rows): \
         per-attribute BinIndexer state hoisted out of the loop, the \
         one-conversion index_scan form of the branchless bin index, \
         and a provably-in-range increment (no bounds check). Counts \
         agree bit-for-bit with the per-row kernel the MR mappers \
         use (asserted here).",
    );
    report.push_note(
        "Lane rows compare the scalar blocked E-step against the \
         8-wide lane-batched kernel (point-major SoA lane groups, \
         fused softmax; DESIGN.md §13). Both sides are the current \
         code, pinned via estep_blocked_with_lanes; outputs are \
         bit-identical (asserted).",
    );
    let host_par = std::thread::available_parallelism().map_or(1, |p| p.get());
    report.push_note(format!(
        "Pool rows run the full E-step / binning scan on the engine \
         worker pool; outputs are bit-identical across thread counts \
         (asserted here and in tests/parallel_kernels.rs). Thread \
         scaling 1→8 workers: EM {:.2}x, binning {:.2}x on a host with \
         {host_par} available core(s) — wall-clock scaling requires \
         real cores, determinism does not.",
        par1.as_secs_f64() / par8.as_secs_f64(),
        hist_scaling,
    ));
    if em_speedup < 2.0 {
        report.push_note(format!(
            "WARNING: EM E-step speedup {em_speedup:.2}x below the 2x target."
        ));
    }
    if em_par_speedup < 2.0 {
        report.push_note(format!(
            "WARNING: pooled EM E-step speedup {em_par_speedup:.2}x (8 workers \
             vs row-oriented baseline) below the 2x target."
        ));
    }
    if lane_speedup_1w < 1.4 {
        report.push_note(format!(
            "WARNING: lane-batched E-step speedup {lane_speedup_1w:.2}x (1 \
             worker vs scalar blocked) below the 1.4x target."
        ));
    }
    report
}

// ----------------------------------------------------------------- codec --

/// Microbenchmarks the segmented columnar spill codec (DESIGN.md §9)
/// against the legacy whole-buffer codec: encoded size, full-reload
/// cost, and the bytes a projected reload of 2 of 20 columns avoids
/// reading. Emits `BENCH_codec.json`.
pub fn codec(scale: &Scale) -> Report {
    use p3c_core::mr::pipeline::{row_block_codec, row_block_seg_codec};
    use p3c_dataset::{ColumnSet, RowBlock};
    use p3c_mapreduce::{DatasetHandle, DatasetStore};
    use std::hint::black_box;
    use std::sync::Arc;

    let mut report = Report::new(
        "BENCH_codec",
        "Segmented columnar spill codec vs whole-buffer baseline",
        &["scenario", "bytes", "fraction of full reload", "wall"],
    );
    let n = scale.size(100_000);
    let d = 20;
    let reps = 3;
    let data = generate(&SyntheticSpec {
        n,
        d,
        num_clusters: 5,
        noise_fraction: 0.10,
        seed: scale.seed,
        ..SyntheticSpec::default()
    })
    .dataset;
    let block = RowBlock::new(n, d, data.as_slice().to_vec());
    let raw_bytes = 8 * n * d;

    // Encoded sizes, measured directly through the two codecs.
    let whole = row_block_codec();
    let seg = row_block_seg_codec();
    let whole_wall = best_of(reps, || {
        black_box((whole.encode)(&block));
    });
    let whole_bytes = (whole.encode)(&block).len();
    let seg_wall = best_of(reps, || {
        black_box((seg.encode_header)(&block));
        for j in 0..d {
            black_box((seg.encode_segment)(&block, j));
        }
    });
    let seg_bytes = (seg.encode_header)(&block).len()
        + (0..d)
            .map(|j| (seg.encode_segment)(&block, j).len())
            .sum::<usize>();

    // Reload cost, measured as block-store read bytes through a
    // zero-budget store (every put spills immediately).
    let projection = [3usize, 11];
    let reload = |segmented: bool, cols: Option<&[usize]>| -> (u64, std::time::Duration) {
        let mut bytes = 0u64;
        let mut best = std::time::Duration::MAX;
        for _ in 0..reps {
            let store = DatasetStore::with_budget(0);
            let handle: DatasetHandle<RowBlock> = DatasetHandle::new("bench-rows");
            if segmented {
                store.put_segmented(&handle, block.clone(), raw_bytes, row_block_seg_codec());
            } else {
                store.put_spillable(&handle, block.clone(), raw_bytes, row_block_codec());
            }
            // A put never evicts itself; a follow-up put pushes the
            // block out to the block store.
            store.put(&DatasetHandle::<u8>::new("bench-nudge"), 0u8, 1);
            assert_eq!(store.stats().spills, 1, "block did not spill");
            let before = store.blockstore().bytes_read();
            let start = Instant::now();
            match cols {
                Some(attrs) => {
                    let view: Arc<ColumnSet> =
                        store.get_columns(&handle, attrs).expect("projected reload");
                    black_box(&view);
                }
                None => {
                    let full = store.get(&handle).expect("full reload");
                    black_box(&full);
                }
            }
            best = best.min(start.elapsed());
            bytes = store.blockstore().bytes_read() - before;
        }
        (bytes, best)
    };
    let (whole_read, whole_reload_wall) = reload(false, None);
    let (seg_read, seg_reload_wall) = reload(true, None);
    let (proj_read, proj_reload_wall) = reload(true, Some(&projection));

    let frac = |b: u64| format!("{:.3}", b as f64 / seg_read as f64);
    report.push_row(vec![
        "spill write (whole-buffer)".into(),
        whole_bytes.to_string(),
        format!("{:.3} of raw", whole_bytes as f64 / raw_bytes as f64),
        secs(whole_wall),
    ]);
    report.push_row(vec![
        "spill write (segmented)".into(),
        seg_bytes.to_string(),
        format!("{:.3} of raw", seg_bytes as f64 / raw_bytes as f64),
        secs(seg_wall),
    ]);
    report.push_row(vec![
        "full reload (whole-buffer)".into(),
        whole_read.to_string(),
        frac(whole_read),
        secs(whole_reload_wall),
    ]);
    report.push_row(vec![
        "full reload (segmented)".into(),
        seg_read.to_string(),
        frac(seg_read),
        secs(seg_reload_wall),
    ]);
    report.push_row(vec![
        format!("projected reload ({}/{d} columns)", projection.len()),
        proj_read.to_string(),
        frac(proj_read),
        secs(proj_reload_wall),
    ]);

    report.push_note(format!(
        "n = {n}, d = {d}, raw size {raw_bytes} bytes, best of {reps} \
         runs; write rows report encoded size relative to raw, reload \
         rows report block-store bytes read relative to the segmented \
         full reload."
    ));
    let target = proj_read as f64 / seg_read as f64;
    if target < 0.20 {
        report.push_note(format!(
            "Projection pushdown reads {:.1}% of the full-reload bytes \
             for a 2-of-20-column scan (target: < 20%).",
            100.0 * target
        ));
    } else {
        report.push_note(format!(
            "WARNING: projected reload reads {:.1}% of the full-reload \
             bytes, above the 20% target.",
            100.0 * target
        ));
    }
    report
}

// ---------------------------------------------------------------- backend --

/// Shuffle-backend comparison (DESIGN.md §12): the same MR-Light
/// clustering over the in-process passthrough, the in-process shuffle
/// service, and worker subprocesses behind the length-prefixed TCP
/// protocol. Reports wall clock and the data-plane counters, and checks
/// every backend's clustering byte-for-byte against the local baseline.
/// Emits `BENCH_backend.json`.
///
/// The `process:N` rows need the `p3c` binary that hosts the worker
/// subcommand (a `target/release` sibling of `experiments`, or
/// `P3C_WORKER_BIN`); when it is missing they degrade to a note instead
/// of failing the suite.
pub fn backend(scale: &Scale) -> Report {
    use p3c_mapreduce::distrib::BackendChoice;

    let mut report = Report::new(
        "BENCH_backend",
        "Shuffle backends: in-memory passthrough vs shuffle service vs worker subprocesses",
        &[
            "backend",
            "wall",
            "shuffle fetches",
            "shuffle MB moved",
            "worker restarts",
            "identical to local",
        ],
    );
    let data = generate(&spec(scale, scale.size(50_000), 5, 0.10, 77)).dataset;
    let params = experiment_params();
    let choices = [
        ("local", BackendChoice::Local),
        ("local-shuffle", BackendChoice::LocalShuffle),
        (
            "process:2",
            BackendChoice::Process {
                workers: 2,
                kill: None,
            },
        ),
        (
            "process:4",
            BackendChoice::Process {
                workers: 4,
                kill: None,
            },
        ),
    ];
    let mut baseline: Option<Clustering> = None;
    for (label, choice) in choices {
        let eng = Engine::new(MrConfig {
            num_reducers: 8,
            split_size: 8192,
            backend: choice,
            ..MrConfig::default()
        });
        let start = Instant::now();
        let result = P3cPlusMrLight::new(&eng, params.clone()).cluster(&data);
        let wall = start.elapsed();
        match result {
            Ok(res) => {
                let jobs = eng.cluster_metrics();
                let sum = |f: fn(&p3c_mapreduce::JobMetrics) -> u64| -> u64 {
                    jobs.jobs().iter().map(f).sum()
                };
                let identical = match &baseline {
                    None => {
                        baseline = Some(res.clustering.clone());
                        "baseline".to_string()
                    }
                    Some(b) => (res.clustering == *b).to_string(),
                };
                report.push_row(vec![
                    label.to_string(),
                    secs(wall),
                    sum(|j| j.shuffle_fetches).to_string(),
                    f3(sum(|j| j.shuffle_bytes_moved) as f64 / 1e6),
                    sum(|j| j.worker_restarts).to_string(),
                    identical,
                ]);
            }
            Err(e) => {
                report.push_note(format!("{label}: unavailable ({e})"));
            }
        }
    }
    report.push_note(
        "Every backend must reproduce the local clustering byte-for-byte; \
         the process rows additionally exercise worker spawn, the TCP \
         frame protocol, and checksum-verified fetches.",
    );
    report
}

// --------------------------------------------------------------- service --

/// Incremental service: re-cluster latency versus a from-scratch batch
/// fit on the same cumulative data, for an append-only stream. Every
/// step is checked byte-identical to batch before its timings are
/// reported, so the speedup column never trades correctness for speed.
/// Emits `BENCH_service.json`.
pub fn service(scale: &Scale) -> Report {
    use p3c_core::incremental::IncrementalLight;
    use p3c_dataset::{Dataset, RowBlock};
    use p3c_mapreduce::DatasetStore;

    let mut report = Report::new(
        "BENCH_service",
        "Incremental re-cluster latency vs. from-scratch batch",
        &[
            "total n",
            "path",
            "append ms",
            "recluster ms",
            "batch ms",
            "batch/incr",
        ],
    );
    // Sturges keeps the bin count constant while n stays inside one
    // power-of-two plateau, so the appends below exercise pure delta
    // maintenance (no histogram rebuild, warm support cache). The
    // initial load lands just past a power of two and the stream stops
    // at the plateau's top.
    let params = P3cParams {
        bin_rule: BinRuleChoice::Sturges,
        ..P3cParams::default()
    };
    let initial = scale.size(20_000);
    let plateau_top = initial.next_power_of_two();
    let appends = 5usize;
    let step = (plateau_top - initial) / (appends + 1);
    let total = initial + appends * step;
    // Capped dims and low noise keep the core set stable across the
    // stream: with many irrelevant attributes, borderline χ² intervals
    // flicker in and out of relevance as n grows, changing signatures
    // and (correctly) disarming the fast path. A service workload with
    // a drifting model is the full-path column, not this benchmark.
    let d = scale.dims.min(16);
    let data = generate(&SyntheticSpec {
        n: total,
        d,
        num_clusters: 3,
        noise_fraction: 0.05,
        max_cluster_dims: 6.min(d),
        seed: scale.seed,
        ..SyntheticSpec::default()
    });
    let all = RowBlock::from(data.dataset);
    let chunk = |start: usize, len: usize| -> RowBlock {
        let rows: Vec<Vec<f64>> = (start..start + len).map(|i| all.row(i).to_vec()).collect();
        RowBlock::from_rows(&rows)
    };

    let store = DatasetStore::new();
    let mut eng = IncrementalLight::new("bench", params.clone());
    let mut fed = 0usize;
    let mut sizes = vec![initial];
    sizes.extend(std::iter::repeat(step).take(appends));
    for len in sizes {
        let block = chunk(fed, len);
        let append_start = Instant::now();
        eng.append(&store, block).expect("append");
        let append_wall = append_start.elapsed();
        fed += len;

        let inc_start = Instant::now();
        let outcome = eng.recluster(&store).expect("recluster");
        let inc_wall = inc_start.elapsed();

        let cumulative = Dataset::from(chunk(0, fed));
        let batch_start = Instant::now();
        let expected = P3cPlusLight::new(params.clone()).cluster(&cumulative);
        let batch_wall = batch_start.elapsed();
        assert_eq!(
            outcome.result.clustering, expected.clustering,
            "n={fed}: incremental model diverged from batch"
        );
        assert_eq!(
            outcome.result.cores, expected.cores,
            "n={fed}: cores diverged"
        );

        report.push_row(vec![
            fed.to_string(),
            outcome.path.label().to_string(),
            f3(append_wall.as_secs_f64() * 1e3),
            f3(inc_wall.as_secs_f64() * 1e3),
            f3(batch_wall.as_secs_f64() * 1e3),
            f3(batch_wall.as_secs_f64() / inc_wall.as_secs_f64().max(1e-9)),
        ]);
    }
    let s = eng.stats();
    report.push_note(format!(
        "engine stats: {} fast / {} full reclusters, {} histogram rebuilds, \
         {} support scans, {} core-gen levels answered from cache",
        s.fast_reclusters, s.full_reclusters, s.hist_rebuilds, s.support_scans, s.cached_levels
    ));
    report.push_note(
        "Batch refits the cumulative data from scratch each step; the \
         incremental path maintains histograms and signature supports in \
         summation form and, on the fast path, finalizes from per-core \
         state — its wall time tracks the delta, not total n.",
    );
    report
}

// -------------------------------------------------------------- recovery --

/// Durable service: write-ahead journal overhead on the append path and
/// crash-recovery latency versus a from-scratch batch fit, across
/// snapshot cadences (DESIGN.md §16). The "crash" is a plain drop of
/// the service — no shutdown hook runs, exactly like a SIGKILL — and
/// every recovered tenant is checked byte-identical to batch before its
/// timings are reported. Emits `BENCH_recovery.json`.
pub fn recovery(scale: &Scale) -> Report {
    use p3c_core::incremental::IncrementalLight;
    use p3c_dataset::{Dataset, RowBlock};
    use p3c_mapreduce::{ClusterService, DatasetStore};
    use std::sync::Arc;

    let mut report = Report::new(
        "BENCH_recovery",
        "Durable service: journal overhead and crash-recovery latency",
        &[
            "snapshot every",
            "append ms (volatile)",
            "append ms (durable)",
            "overhead",
            "recover ms",
            "records replayed",
            "batch ms",
            "batch/recover",
        ],
    );
    let params = P3cParams::default();
    let appends = 12usize;
    let total = scale.size(12_000);
    let step = total / appends;
    let d = scale.dims.min(16);
    let data = generate(&SyntheticSpec {
        n: appends * step,
        d,
        num_clusters: 3,
        noise_fraction: 0.05,
        max_cluster_dims: 6.min(d),
        seed: scale.seed,
        ..SyntheticSpec::default()
    });
    let all = RowBlock::from(data.dataset);
    let chunk = |start: usize, len: usize| -> RowBlock {
        let rows: Vec<Vec<f64>> = (start..start + len).map(|i| all.row(i).to_vec()).collect();
        RowBlock::from_rows(&rows)
    };

    // Volatile baseline: the same append schedule with no durability.
    let volatile: ClusterService<IncrementalLight> =
        ClusterService::new(Arc::new(DatasetStore::new()), None);
    volatile
        .create("bench", IncrementalLight::new("bench", params.clone()))
        .expect("create");
    let start = Instant::now();
    for a in 0..appends {
        volatile
            .append("bench", chunk(a * step, step))
            .expect("append");
    }
    let volatile_wall = start.elapsed();

    let base = std::env::temp_dir().join(format!("p3c-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cumulative = Dataset::from(chunk(0, appends * step));
    let batch_start = Instant::now();
    let expected = P3cPlusLight::new(params.clone()).cluster(&cumulative);
    let batch_wall = batch_start.elapsed();

    for every in [0u64, 4, 16, 64] {
        let dir = base.join(format!("every-{every}"));
        let durable: ClusterService<IncrementalLight> =
            ClusterService::with_durability(Arc::new(DatasetStore::new()), None, &dir, every)
                .expect("data dir");
        durable
            .create("bench", IncrementalLight::new("bench", params.clone()))
            .expect("create");
        let start = Instant::now();
        for a in 0..appends {
            durable
                .append("bench", chunk(a * step, step))
                .expect("append");
        }
        let durable_wall = start.elapsed();
        drop(durable); // the crash: no shutdown hook runs

        let recovered: ClusterService<IncrementalLight> =
            ClusterService::with_durability(Arc::new(DatasetStore::new()), None, &dir, every)
                .expect("data dir");
        let start = Instant::now();
        let rec = recovered.recover().expect("recover");
        let recover_wall = start.elapsed();
        assert_eq!(rec.tenants, 1, "tenant lost across the crash");

        let outcome = recovered.recluster("bench").expect("recluster");
        assert_eq!(
            outcome.result.clustering, expected.clustering,
            "snapshot_every={every}: recovered model diverged from batch"
        );
        assert_eq!(
            outcome.result.cores, expected.cores,
            "snapshot_every={every}: cores diverged"
        );

        report.push_row(vec![
            if every == 0 {
                "journal only".to_string()
            } else {
                every.to_string()
            },
            f3(volatile_wall.as_secs_f64() * 1e3),
            f3(durable_wall.as_secs_f64() * 1e3),
            f3(durable_wall.as_secs_f64() / volatile_wall.as_secs_f64().max(1e-9)),
            f3(recover_wall.as_secs_f64() * 1e3),
            rec.records_replayed.to_string(),
            f3(batch_wall.as_secs_f64() * 1e3),
            f3(batch_wall.as_secs_f64() / recover_wall.as_secs_f64().max(1e-9)),
        ]);
    }
    let _ = std::fs::remove_dir_all(&base);
    report.push_note(
        "Appends write the block to the journal (length-prefixed, \
         checksummed) before applying it; snapshots bound replay to the \
         records since the last roll, so recover ms shrinks as the \
         cadence tightens while the append path pays the snapshot \
         serialization. Recovery rehydrates maintained statistics \
         without touching the clustering pipeline — the batch column is \
         what a stateless restart would have to pay per tenant.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_rows_monotone_to_one() {
        let r = fig1(&Scale::smoke());
        assert_eq!(r.rows.len(), 9);
        let probs: Vec<f64> = r.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        for w in probs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "not monotone: {probs:?}");
        }
        assert!(probs[probs.len() - 1] > 0.9, "tail: {probs:?}");
    }

    #[test]
    fn fig5_smoke() {
        let r = fig5(&Scale::smoke());
        // 2 sizes × 8 thresholds.
        assert_eq!(r.rows.len(), 16);
        // Filtered combined counts must never exceed unfiltered ones.
        for row in &r.rows {
            let unfiltered: usize = row[3].parse().unwrap();
            let filtered: usize = row[5].parse().unwrap();
            assert!(filtered <= unfiltered);
        }
    }

    #[test]
    fn colon_smoke() {
        let r = colon(&Scale::smoke());
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            let acc: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&acc));
        }
    }

    #[test]
    fn bins_smoke() {
        let r = bins(&Scale::smoke());
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            let sturges: usize = row[1].parse().unwrap();
            let fd: usize = row[2].parse().unwrap();
            assert!(fd >= sturges / 2, "fd={fd} sturges={sturges}");
        }
    }

    #[test]
    fn dag_smoke() {
        let r = dag(&Scale::smoke());
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            let hwm: u64 = row[3].parse().unwrap();
            assert!(hwm >= 1, "{row:?}");
            // The MR pipelines must reproduce the serial output exactly.
            if row[0].starts_with("MR") {
                assert_eq!(row[5], "identical", "{row:?}");
            }
        }
    }

    #[test]
    fn codec_smoke() {
        let r = codec(&Scale::smoke());
        assert_eq!(r.rows.len(), 5);
        // A 2-of-20-column projected reload must read far fewer bytes
        // than the segmented full reload (acceptance: < 20%).
        let seg_read: u64 = r.rows[3][1].parse().unwrap();
        let proj_read: u64 = r.rows[4][1].parse().unwrap();
        assert!(
            (proj_read as f64) < 0.20 * seg_read as f64,
            "projected {proj_read} vs full {seg_read}"
        );
    }

    #[test]
    fn run_algo_all_variants_smoke() {
        let scale = Scale::smoke();
        let data = generate(&spec(&scale, 1500, 2, 0.05, 3));
        for algo in [
            Algo::BowLight,
            Algo::BowMvb,
            Algo::MrLight,
            Algo::MrMvb,
            Algo::MrNaive,
        ] {
            let (clustering, _) = run_algo(algo, &data.dataset, 500);
            assert!(
                clustering.num_clusters() <= 10,
                "{}: runaway clusters",
                algo.label()
            );
        }
    }
}
