//! Experiment reports: tabular results serializable to JSON and markdown.

use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;

/// One tabular experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id, e.g. `"fig5"`.
    pub id: String,
    /// Human title, e.g. `"Effect of redundancy filtering"`.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; cells are strings (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (scale caveats, parameter choices).
    pub notes: Vec<String>,
}

impl Report {
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row/column arity mismatch");
        self.rows.push(cells);
    }

    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for note in &self.notes {
                out.push_str(&format!("> {note}\n"));
            }
        }
        out
    }

    /// Renders the report as pretty-printed JSON. Hand-rolled (the
    /// struct is strings all the way down) so file output does not
    /// depend on a JSON library being available.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn str_list(items: &[String], indent: &str) -> String {
            if items.is_empty() {
                return "[]".to_string();
            }
            let inner = items
                .iter()
                .map(|s| format!("{indent}  \"{}\"", esc(s)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("[\n{inner}\n{indent}]")
        }
        let rows = if self.rows.is_empty() {
            "[]".to_string()
        } else {
            let inner = self
                .rows
                .iter()
                .map(|r| format!("    {}", str_list(r, "    ")))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("[\n{inner}\n  ]")
        };
        format!(
            "{{\n  \"id\": \"{}\",\n  \"title\": \"{}\",\n  \"columns\": {},\n  \"rows\": {},\n  \"notes\": {}\n}}",
            esc(&self.id),
            esc(&self.title),
            str_list(&self.columns, "  "),
            rows,
            str_list(&self.notes, "  "),
        )
    }

    /// Writes `<dir>/<id>.json` and `<dir>/<id>.md`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::File::create(dir.join(format!("{}.json", self.id)))?
            .write_all(self.to_json().as_bytes())?;
        std::fs::File::create(dir.join(format!("{}.md", self.id)))?
            .write_all(self.to_markdown().as_bytes())?;
        Ok(())
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a duration in seconds with 2 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut r = Report::new("figX", "Test figure", &["a", "b"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.push_note("scaled down");
        let md = r.to_markdown();
        assert!(md.contains("## figX — Test figure"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("> scaled down"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut r = Report::new("x", "t", &["a", "b"]);
        r.push_row(vec!["1".into()]);
    }

    #[test]
    fn json_roundtrip() {
        let mut r = Report::new("id", "title", &["c"]);
        r.push_row(vec!["v".into()]);
        let json = serde_json::to_string(&r).unwrap();
        // Round-tripping needs a real serde_json; the offline stub
        // cannot parse (and serializes a placeholder).
        match serde_json::from_str::<Report>(&json) {
            Ok(back) => {
                assert_eq!(back.id, "id");
                assert_eq!(back.rows.len(), 1);
            }
            Err(e) => assert!(
                e.to_string().contains("offline stub"),
                "round-trip failed with a real serde_json: {e}"
            ),
        }
    }

    #[test]
    fn write_files() {
        let dir = std::env::temp_dir().join("p3c-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let r = Report::new("t1", "x", &["a"]);
        r.write_to(&dir).unwrap();
        assert!(dir.join("t1.json").exists());
        assert!(dir.join("t1.md").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
