//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (Section 7).
//!
//! Each `fig*` function in [`experiments`] reproduces one figure as a
//! [`report::Report`] — the same series the paper plots — and can be run
//! at configurable scale (the paper's largest runs used a 112-reducer
//! Hadoop cluster and up to 10⁹ points; the defaults here reproduce the
//! *shape* of every result on one machine, see DESIGN.md §1).
//!
//! The `experiments` binary (this crate's `src/bin/experiments.rs`) runs
//! them all and writes `results/*.{json,md}`, from which EXPERIMENTS.md
//! is assembled.

pub mod experiments;
pub mod report;

/// Scale preset for the experiment suite.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier applied to the default database sizes (1.0 = defaults;
    /// 0.1 = smoke test).
    pub factor: f64,
    /// Data dimensionality (the paper: 50).
    pub dims: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            factor: 1.0,
            dims: 50,
            seed: 7,
        }
    }
}

impl Scale {
    /// A fast configuration for CI and tests.
    pub fn smoke() -> Self {
        Self {
            factor: 0.05,
            dims: 12,
            ..Self::default()
        }
    }

    /// Applies the factor to a base size (at least 500 points).
    pub fn size(&self, base: usize) -> usize {
        ((base as f64 * self.factor) as usize).max(500)
    }
}
