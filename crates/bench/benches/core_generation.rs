//! Cluster-core generation benchmark (Algorithm 1) across database sizes
//! and cluster counts, plus the redundancy filter on its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p3c_core::config::P3cParams;
use p3c_core::cores::generate_cluster_cores;
use p3c_core::histogram::build_histograms_rows;
use p3c_core::redundancy::filter_redundant;
use p3c_core::relevance::relevant_intervals;
use p3c_datagen::{generate, SyntheticSpec};
use p3c_stats::BinRule;

fn bench_core_generation(c: &mut Criterion) {
    let params = P3cParams::default();
    let mut group = c.benchmark_group("core_generation");
    group.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        for &k in &[3usize, 7] {
            let data = generate(&SyntheticSpec {
                n,
                d: 20,
                num_clusters: k,
                noise_fraction: 0.1,
                max_cluster_dims: 6,
                seed: 3,
                ..SyntheticSpec::default()
            });
            let rows = data.dataset.row_refs();
            let bins = BinRule::FreedmanDiaconis.num_bins(n);
            let hists = build_histograms_rows(&rows, bins);
            let intervals = relevant_intervals(&hists.histograms, params.alpha_chi2);
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{k}_clusters"), n),
                &intervals,
                |b, ivs| b.iter(|| generate_cluster_cores(ivs, &rows, &params)),
            );
        }
    }

    // Redundancy filter in isolation on a larger synthetic core set.
    let data = generate(&SyntheticSpec {
        n: 20_000,
        d: 20,
        num_clusters: 7,
        noise_fraction: 0.2,
        max_cluster_dims: 6,
        seed: 9,
        ..SyntheticSpec::default()
    });
    let rows = data.dataset.row_refs();
    let bins = BinRule::FreedmanDiaconis.num_bins(rows.len());
    let hists = build_histograms_rows(&rows, bins);
    let intervals = relevant_intervals(&hists.histograms, params.alpha_chi2);
    let no_filter = P3cParams {
        use_redundancy_filter: false,
        ..params.clone()
    };
    let gen = generate_cluster_cores(&intervals, &rows, &no_filter);
    let mut cores = gen.cores;
    p3c_core::cores::attach_expected_supports(&mut cores, rows.len());
    group.bench_function("redundancy_filter", |b| {
        b.iter(|| filter_redundant(cores.clone()))
    });
    group.finish();
}

criterion_group!(benches, bench_core_generation);
criterion_main!(benches);
