//! End-to-end pipeline benchmarks — the Figure 7 quantities as criterion
//! measurements: BoW (Light/MVB), P3C+-MR (Light/MVB/Naive) at two sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p3c_bench::experiments::{run_algo, Algo};
use p3c_datagen::{generate, SyntheticSpec};

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipelines");
    group.sample_size(10);
    for &n in &[5_000usize, 20_000] {
        let data = generate(&SyntheticSpec {
            n,
            d: 20,
            num_clusters: 5,
            noise_fraction: 0.1,
            max_cluster_dims: 6,
            seed: 7,
            ..SyntheticSpec::default()
        });
        group.throughput(Throughput::Elements(n as u64));
        for algo in [
            Algo::BowLight,
            Algo::BowMvb,
            Algo::MrLight,
            Algo::MrMvb,
            Algo::MrNaive,
        ] {
            group.bench_with_input(
                BenchmarkId::new(algo.label().replace(' ', "_"), n),
                &data.dataset,
                |b, ds| b.iter(|| run_algo(algo, ds, 1_000)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
