//! Section 5.3 ablation: the Rapid Signature Support Counter vs the naive
//! per-candidate containment scan, across candidate-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p3c_core::support::{count_supports_naive, count_supports_rssc};
use p3c_core::types::{Interval, Signature};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BINS: usize = 20;
const DIMS: usize = 20;

fn make_candidates(count: usize, rng: &mut StdRng) -> Vec<Signature> {
    (0..count)
        .map(|_| {
            let p = rng.gen_range(1..=3usize);
            let mut attrs: Vec<usize> = (0..DIMS).collect();
            // Partial shuffle for attribute selection.
            for i in 0..p {
                let j = rng.gen_range(i..DIMS);
                attrs.swap(i, j);
            }
            let intervals = (0..p)
                .map(|i| {
                    let lo = rng.gen_range(0..BINS - 1);
                    let hi = rng.gen_range(lo..BINS.min(lo + 4));
                    Interval::new(attrs[i], lo, hi, BINS)
                })
                .collect();
            Signature::new(intervals)
        })
        .collect()
}

fn bench_rssc(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let data: Vec<Vec<f64>> = (0..20_000)
        .map(|_| (0..DIMS).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();

    let mut group = c.benchmark_group("support_counting");
    group.sample_size(10);
    for &count in &[64usize, 512, 4_096] {
        let candidates = make_candidates(count, &mut rng);
        group.throughput(Throughput::Elements((rows.len() * count) as u64));
        group.bench_with_input(BenchmarkId::new("rssc", count), &candidates, |b, cands| {
            b.iter(|| count_supports_rssc(cands, &rows))
        });
        // The naive oracle becomes unbearable past ~1k candidates; bench
        // it only where it finishes quickly, which is exactly the point.
        if count <= 512 {
            group.bench_with_input(BenchmarkId::new("naive", count), &candidates, |b, cands| {
                b.iter(|| count_supports_naive(cands, &rows))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rssc);
criterion_main!(benches);
