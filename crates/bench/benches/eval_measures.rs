//! Quality-measure benchmarks: E4SC / F1 / RNIA / CE on clusterings of
//! growing size (the measures run once per experiment cell, so they must
//! stay cheap relative to the clustering itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p3c_dataset::{Clustering, ProjectedCluster};
use p3c_eval::{ce, e4sc, f1_object, rnia};
use std::collections::BTreeSet;

fn synthetic_clustering(n: usize, k: usize, shift: usize) -> Clustering {
    let per = n / k;
    let clusters = (0..k)
        .map(|c| {
            let lo = c * per + shift;
            let points: Vec<usize> = (lo..lo + per).collect();
            let attrs: BTreeSet<usize> = (c % 5..c % 5 + 4).collect();
            ProjectedCluster::new(points, attrs, vec![])
        })
        .collect();
    Clustering::new(clusters, vec![])
}

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_measures");
    for &n in &[10_000usize, 100_000] {
        let found = synthetic_clustering(n, 7, 50);
        let hidden = synthetic_clustering(n, 7, 0);
        group.bench_with_input(BenchmarkId::new("e4sc", n), &n, |b, _| {
            b.iter(|| e4sc(&found, &hidden))
        });
        group.bench_with_input(BenchmarkId::new("f1", n), &n, |b, _| {
            b.iter(|| f1_object(&found, &hidden))
        });
        group.bench_with_input(BenchmarkId::new("rnia", n), &n, |b, _| {
            b.iter(|| rnia(&found, &hidden))
        });
        group.bench_with_input(BenchmarkId::new("ce", n), &n, |b, _| {
            b.iter(|| ce(&found, &hidden))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
