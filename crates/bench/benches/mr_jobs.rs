//! Engine-level benchmarks: histogram job, candidate proving job, and the
//! raw shuffle, at several split sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p3c_core::mr::coregen::proving_job;
use p3c_core::mr::histogram::histogram_job;
use p3c_core::types::{Interval, Signature};
use p3c_datagen::{generate, SyntheticSpec};
use p3c_mapreduce::{Emitter, Engine, MrConfig};

fn bench_mr_jobs(c: &mut Criterion) {
    let data = generate(&SyntheticSpec {
        n: 50_000,
        d: 20,
        num_clusters: 3,
        noise_fraction: 0.1,
        max_cluster_dims: 6,
        seed: 5,
        ..SyntheticSpec::default()
    });
    let rows = data.dataset.row_refs();
    let n = rows.len() as u64;

    let mut group = c.benchmark_group("mr_jobs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));

    for &split_size in &[2_048usize, 16_384] {
        let engine = Engine::new(MrConfig {
            split_size,
            num_reducers: 8,
            ..MrConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("histogram_job", split_size),
            &engine,
            |b, eng| b.iter(|| histogram_job(eng, &rows, &[32; 20]).unwrap()),
        );
    }

    let candidates: Vec<Signature> = (0..128)
        .map(|i| {
            Signature::new(vec![
                Interval::new(i % 10, (i / 10) % 8, (i / 10) % 8 + 2, 16),
                Interval::new(10 + (i % 10), i % 8, i % 8 + 3, 16),
            ])
        })
        .collect();
    let engine = Engine::new(MrConfig {
        split_size: 8_192,
        ..MrConfig::default()
    });
    group.bench_function("proving_job_128_candidates", |b| {
        b.iter(|| proving_job(&engine, &candidates, &rows).unwrap())
    });

    // Raw shuffle throughput: identity map + counting reduce.
    let ints: Vec<u64> = (0..200_000).collect();
    let mapper = |r: &u64, out: &mut Emitter<u64, u64>| out.emit(r % 1024, 1);
    let reducer = |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| {
        out.push((*k, vs.into_iter().sum()));
    };
    group.throughput(Throughput::Elements(ints.len() as u64));
    group.bench_function("shuffle_200k_records", |b| {
        b.iter(|| {
            engine
                .run("bench-shuffle", &ints, &mapper, &reducer)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mr_jobs);
criterion_main!(benches);
