//! Microbenchmark for the Poisson support test (Figure 1's machinery):
//! exact incomplete-gamma tail vs the Gaussian σ-unit approximation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use p3c_stats::PoissonTest;

fn bench_poisson(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_test");
    for &lambda in &[10.0, 1_000.0, 100_000.0] {
        group.bench_with_input(
            BenchmarkId::new("exact_tail", lambda as u64),
            &lambda,
            |b, &l| b.iter(|| PoissonTest::tail_prob_exact(black_box(1.01 * l), black_box(l))),
        );
        group.bench_with_input(
            BenchmarkId::new("gauss_tail", lambda as u64),
            &lambda,
            |b, &l| b.iter(|| PoissonTest::tail_prob_gauss(black_box(1.01 * l), black_box(l))),
        );
    }
    let test = PoissonTest::new(1e-10);
    group.bench_function("significantly_larger", |b| {
        b.iter(|| test.significantly_larger(black_box(1_200.0), black_box(1_000.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_poisson);
criterion_main!(benches);
