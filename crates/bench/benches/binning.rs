//! Section 4.1.1 ablation bench: histogram building under Sturges vs
//! Freedman–Diaconis bin counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p3c_core::histogram::build_histograms_rows;
use p3c_datagen::{generate, SyntheticSpec};
use p3c_stats::BinRule;

fn bench_binning(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram_building");
    for &n in &[10_000usize, 100_000] {
        let data = generate(&SyntheticSpec {
            n,
            d: 20,
            num_clusters: 3,
            noise_fraction: 0.1,
            max_cluster_dims: 6,
            seed: 1,
            ..SyntheticSpec::default()
        });
        let rows = data.dataset.row_refs();
        group.throughput(Throughput::Elements(n as u64));
        for (rule, name) in [
            (BinRule::Sturges, "sturges"),
            (BinRule::FreedmanDiaconis, "fd"),
        ] {
            let bins = rule.num_bins(n);
            group.bench_with_input(BenchmarkId::new(name, n), &rows, |b, rows| {
                b.iter(|| build_histograms_rows(rows, bins))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_binning);
criterion_main!(benches);
