//! The MapReduce programming model: mappers, reducers, combiners, emitter.

use crate::weight::Weighable;

/// Emitted pairs plus user counters, as returned by [`Emitter::into_parts`].
pub type EmittedParts<K, V> = (Vec<(K, V)>, Vec<(&'static str, u64)>);

/// Collector handed to map tasks; counts emitted records and bytes for the
/// job metrics (Hadoop's "map output records/bytes" counters).
#[derive(Debug)]
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
    records: u64,
    bytes: u64,
    counters: Vec<(&'static str, u64)>,
}

impl<K: Weighable, V: Weighable> Default for Emitter<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Weighable, V: Weighable> Emitter<K, V> {
    /// Creates an empty emitter. Public so mapper implementations can be
    /// unit-tested outside the engine.
    pub fn new() -> Self {
        Self {
            pairs: Vec::new(),
            records: 0,
            bytes: 0,
            counters: Vec::new(),
        }
    }

    /// Emits one intermediate key/value pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.records += 1;
        self.bytes += (key.weight() + value.weight()) as u64;
        self.pairs.push((key, value));
    }

    /// Increments a user counter (Hadoop-style custom counters).
    pub fn inc_counter(&mut self, name: &'static str, delta: u64) {
        if let Some(entry) = self.counters.iter_mut().find(|(n, _)| *n == name) {
            entry.1 += delta;
        } else {
            self.counters.push((name, delta));
        }
    }

    pub(crate) fn records(&self) -> u64 {
        self.records
    }

    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Consumes the emitter, returning the emitted pairs and counters.
    /// Public for mapper unit-testing.
    pub fn into_parts(self) -> EmittedParts<K, V> {
        (self.pairs, self.counters)
    }
}

/// A map task over records of type `I`, producing `(K, V)` pairs.
///
/// Implementations must be [`Sync`]: one mapper instance is shared by all
/// map tasks, exactly like a Hadoop `Mapper` class configured once and
/// instantiated per task. Any per-job configuration ("distributed cache"
/// content) lives in the implementing struct's fields.
pub trait Mapper<I, K, V>: Sync
where
    K: Weighable,
    V: Weighable,
{
    /// Processes a single record.
    fn map(&self, record: &I, out: &mut Emitter<K, V>);

    /// Processes a whole input split. The default forwards record-by-record;
    /// override to implement setup/cleanup-phase logic (e.g. the paper's
    /// MVB mapper, which sorts its cached split in the cleanup phase).
    fn map_split(&self, split: &[I], out: &mut Emitter<K, V>) {
        for record in split {
            self.map(record, out);
        }
    }
}

/// A reduce task: receives one key with all its values (already grouped by
/// the shuffle) and appends output records.
pub trait Reducer<K, V, O>: Sync {
    /// Folds one key's grouped values into output records.
    fn reduce(&self, key: &K, values: Vec<V>, out: &mut Vec<O>);
}

/// A map-side combiner: folds the values of one key *within a single map
/// task's output* before the shuffle, cutting shuffle bytes — semantics
/// identical to Hadoop's combiner contract (must be associative).
pub trait Combiner<K, V>: Sync {
    /// Folds one key's local values into a single pre-shuffle value.
    fn combine(&self, key: &K, values: Vec<V>) -> V;
}

/// Blanket mapper for plain functions — convenient for small jobs/tests.
impl<I, K, V, F> Mapper<I, K, V> for F
where
    F: Fn(&I, &mut Emitter<K, V>) + Sync,
    K: Weighable,
    V: Weighable,
{
    fn map(&self, record: &I, out: &mut Emitter<K, V>) {
        self(record, out)
    }
}

/// Blanket reducer for plain functions.
impl<K, V, O, F> Reducer<K, V, O> for F
where
    F: Fn(&K, Vec<V>, &mut Vec<O>) + Sync,
{
    fn reduce(&self, key: &K, values: Vec<V>, out: &mut Vec<O>) {
        self(key, values, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_counts_records_and_bytes() {
        let mut e: Emitter<u32, f64> = Emitter::new();
        e.emit(1, 2.0);
        e.emit(2, 3.0);
        assert_eq!(e.records(), 2);
        assert_eq!(e.bytes(), 2 * 12);
        let (pairs, _) = e.into_parts();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn counters_accumulate_by_name() {
        let mut e: Emitter<(), ()> = Emitter::new();
        e.inc_counter("hits", 2);
        e.inc_counter("misses", 1);
        e.inc_counter("hits", 3);
        let (_, counters) = e.into_parts();
        assert!(counters.contains(&("hits", 5)));
        assert!(counters.contains(&("misses", 1)));
    }

    #[test]
    fn default_map_split_forwards_each_record() {
        struct Echo;
        impl Mapper<u32, u32, ()> for Echo {
            fn map(&self, r: &u32, out: &mut Emitter<u32, ()>) {
                out.emit(*r, ());
            }
        }
        let mut e = Emitter::new();
        Echo.map_split(&[1, 2, 3], &mut e);
        let (pairs, _) = e.into_parts();
        assert_eq!(pairs.iter().map(|p| p.0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn closures_are_mappers_and_reducers() {
        let m = |r: &u32, out: &mut Emitter<u32, u32>| out.emit(*r % 2, *r);
        let mut e = Emitter::new();
        m.map(&7, &mut e);
        let (pairs, _) = e.into_parts();
        assert_eq!(pairs, vec![(1, 7)]);

        let r = |k: &u32, vs: Vec<u32>, out: &mut Vec<(u32, u32)>| {
            out.push((*k, vs.into_iter().sum()));
        };
        let mut out = Vec::new();
        r.reduce(&1, vec![1, 2, 3], &mut out);
        assert_eq!(out, vec![(1, 6)]);
    }
}
