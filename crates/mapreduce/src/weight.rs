//! Byte-weight estimation for shuffle and broadcast accounting.
//!
//! Hadoop meters the bytes moved between phases; this engine does the same
//! without actually serializing anything. Every key/value type implements
//! [`Weighable`], returning the approximate number of bytes its serialized
//! form would occupy. The estimates use fixed-width encodings (8 bytes per
//! number), which is what the paper's Writable-based records cost.

/// Approximate serialized size of a value, in bytes.
pub trait Weighable {
    /// Approximate serialized size of `self`, in bytes.
    fn weight(&self) -> usize;
}

macro_rules! fixed_weight {
    ($($t:ty => $w:expr),* $(,)?) => {
        $(impl Weighable for $t {
            #[inline]
            fn weight(&self) -> usize { $w }
        })*
    };
}

fixed_weight!(
    u8 => 1, i8 => 1,
    u16 => 2, i16 => 2,
    u32 => 4, i32 => 4, f32 => 4,
    u64 => 8, i64 => 8, f64 => 8,
    usize => 8, isize => 8,
    bool => 1,
    () => 0,
);

impl<T: Weighable> Weighable for Vec<T> {
    fn weight(&self) -> usize {
        // 4-byte length prefix plus elements.
        4 + self.iter().map(Weighable::weight).sum::<usize>()
    }
}

impl<T: Weighable> Weighable for &[T] {
    fn weight(&self) -> usize {
        4 + self.iter().map(Weighable::weight).sum::<usize>()
    }
}

impl<T: Weighable> Weighable for Option<T> {
    fn weight(&self) -> usize {
        1 + self.as_ref().map_or(0, Weighable::weight)
    }
}

impl<T: Weighable> Weighable for Box<T> {
    fn weight(&self) -> usize {
        (**self).weight()
    }
}

impl Weighable for String {
    fn weight(&self) -> usize {
        4 + self.len()
    }
}

impl Weighable for &str {
    fn weight(&self) -> usize {
        4 + self.len()
    }
}

impl<A: Weighable, B: Weighable> Weighable for (A, B) {
    fn weight(&self) -> usize {
        self.0.weight() + self.1.weight()
    }
}

impl<A: Weighable, B: Weighable, C: Weighable> Weighable for (A, B, C) {
    fn weight(&self) -> usize {
        self.0.weight() + self.1.weight() + self.2.weight()
    }
}

impl<A: Weighable, B: Weighable, C: Weighable, D: Weighable> Weighable for (A, B, C, D) {
    fn weight(&self) -> usize {
        self.0.weight() + self.1.weight() + self.2.weight() + self.3.weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_weights() {
        assert_eq!(1u8.weight(), 1);
        assert_eq!(1.0f64.weight(), 8);
        assert_eq!(7usize.weight(), 8);
        assert_eq!(().weight(), 0);
        assert_eq!(true.weight(), 1);
    }

    #[test]
    fn container_weights() {
        assert_eq!(vec![1.0f64; 3].weight(), 4 + 24);
        assert_eq!(String::from("abc").weight(), 7);
        assert_eq!(Some(5u32).weight(), 5);
        assert_eq!(None::<u32>.weight(), 1);
    }

    #[test]
    fn tuple_weights_compose() {
        assert_eq!((1u32, 2.0f64).weight(), 12);
        assert_eq!((1u8, 2u8, 3u8).weight(), 3);
        assert_eq!(((), 1u64, "ab", vec![0u8; 2]).weight(), 8 + 6 + 6);
    }

    #[test]
    fn nested_vectors() {
        let v: Vec<Vec<f64>> = vec![vec![0.0; 2]; 3];
        // outer prefix 4 + 3 * (4 + 16)
        assert_eq!(v.weight(), 4 + 3 * 20);
    }
}
