//! Rank-checked lock wrappers enforcing the DESIGN.md §15 lock
//! hierarchy at runtime.
//!
//! Every named lock in the workspace has a rank (see [`rank`]); a thread
//! may only acquire locks in **strictly ascending rank order**. Under the
//! `lockcheck` feature each acquisition asserts the new rank is greater
//! than every rank the thread already holds — a violation panics with
//! both lock names, turning any hierarchy bug into a deterministic test
//! failure instead of a rare deadlock. Without the feature the wrappers
//! are thin newtypes over the parking_lot primitives.
//!
//! Under `--cfg loom` the mutex and condvar delegate to the
//! [`p3c_loom`] model-checked shims instead, so structures built on
//! these wrappers (the service admission gate, the shuffle tracker) can
//! be model-checked without code changes. The rank assertions stay on in
//! loom builds only when `lockcheck` is also enabled.

#[cfg(loom)]
use p3c_loom::sync::{Condvar as RawCondvar, Mutex as RawMutex, MutexGuard as RawMutexGuard};
#[cfg(not(loom))]
use parking_lot::{Condvar as RawCondvar, Mutex as RawMutex, MutexGuard as RawMutexGuard};
use std::ops::{Deref, DerefMut};

pub mod rank {
    //! The workspace lock hierarchy — one rank per named lock, mirrored
    //! in the DESIGN.md §15 table. Acquisition must be strictly
    //! ascending; gaps leave room for future locks.

    /// `ClusterService.tenants` — the tenant registry map.
    pub const SERVICE_TENANTS: u16 = 10;
    /// `Admission.state` — the admission byte/job ledger.
    pub const SERVICE_ADMISSION: u16 = 20;
    /// Per-tenant `Mutex<T>` serializing one tenant's operations.
    pub const SERVICE_TENANT: u16 = 30;
    /// `ClusterService.published` — last published model per tenant.
    /// Above the tenant lock: a finished re-cluster publishes its model
    /// while still holding the tenant it computed it under.
    pub const SERVICE_PUBLISHED: u16 = 35;
    /// `RunShared` scheduler queue state (`dag.rs`).
    pub const DAG_QUEUE: u16 = 40;
    /// DAG recovery serialization (`dag.rs`). Below the node-run slots:
    /// lineage recovery holds it while re-executing producers, whose
    /// attempt bookkeeping locks their node-run slot.
    pub const DAG_RECOVERY: u16 = 45;
    /// Per-node run state (`dag.rs`).
    pub const DAG_NODE_RUN: u16 = 48;
    /// Engine metrics ledger (`engine.rs`).
    pub const ENGINE_LEDGER: u16 = 55;
    /// Engine lost-map recovery serialization (`engine.rs`).
    pub const ENGINE_RECOVERY: u16 = 60;
    /// Engine first-error capture slots (`engine.rs`).
    pub const ENGINE_ERROR: u16 = 65;
    /// `ProcessBackend.state` / cluster connection table (`distrib`).
    pub const BACKEND_STATE: u16 = 70;
    /// `LocalBackend` injected-loss set (`distrib/backend.rs`).
    pub const BACKEND_LOST: u16 = 72;
    /// Backend per-shuffle statistics maps (`distrib`).
    pub const BACKEND_STATS: u16 = 75;
    /// `MapOutputTracker.entries` (`distrib/tracker.rs`).
    pub const TRACKER_ENTRIES: u16 = 78;
    /// `DatasetStore.inner` — the dataset cache (`dataset.rs`).
    pub const DATASET_STORE: u16 = 80;
    /// `BlockStore.files` — the block map RwLock (`blockstore.rs`).
    pub const BLOCKSTORE_FILES: u16 = 90;
    /// Worker panic-payload slot (`pool.rs`).
    pub const POOL_PAYLOAD: u16 = 100;
    /// Shuffle bucket slots (`kernel.rs`).
    pub const KERNEL_BUCKETS: u16 = 110;
    /// Block-partial slots (`kernel.rs`).
    pub const KERNEL_PARTIALS: u16 = 112;
    /// Counter ledger (`kernel.rs`).
    pub const KERNEL_COUNTERS: u16 = 114;
}

#[cfg(feature = "lockcheck")]
mod held {
    //! Thread-local stack of held ranks, consulted on every acquisition.

    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<(u16, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub fn acquired(rank: u16, name: &'static str) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(&(top, top_name)) = h.iter().max_by_key(|&&(r, _)| r) {
                assert!(
                    rank > top,
                    "lock-rank violation: acquiring '{name}' (rank {rank}) while \
                     holding '{top_name}' (rank {top}); acquisition must be strictly \
                     ascending — see DESIGN.md §15"
                );
            }
            h.push((rank, name));
        });
    }

    pub fn released(rank: u16) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&(r, _)| r == rank) {
                h.remove(pos);
            }
        });
    }
}

#[cfg(not(feature = "lockcheck"))]
mod held {
    #[inline(always)]
    pub fn acquired(_rank: u16, _name: &'static str) {}
    #[inline(always)]
    pub fn released(_rank: u16) {}
}

/// A mutex with a declared rank in the workspace lock hierarchy.
#[derive(Debug)]
pub struct RankedMutex<T> {
    rank: u16,
    name: &'static str,
    inner: RawMutex<T>,
}

impl<T> RankedMutex<T> {
    /// A new mutex at `rank` (one of the [`rank`] constants) named as in
    /// the DESIGN.md §15 table.
    pub fn new(rank: u16, name: &'static str, value: T) -> Self {
        Self {
            rank,
            name,
            inner: RawMutex::new(value),
        }
    }

    /// Acquires the lock, asserting (under `lockcheck`) that `rank` is
    /// strictly above every rank this thread already holds.
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        held::acquired(self.rank, self.name);
        RankedMutexGuard {
            raw: self.inner.lock(),
            rank: self.rank,
        }
    }
}

/// RAII guard of a [`RankedMutex`]; pops the rank and releases on drop.
pub struct RankedMutexGuard<'a, T> {
    raw: RawMutexGuard<'a, T>,
    rank: u16,
}

impl<T> Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.raw
    }
}

impl<T> DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.raw
    }
}

impl<T> Drop for RankedMutexGuard<'_, T> {
    fn drop(&mut self) {
        held::released(self.rank);
    }
}

/// A condition variable paired with a [`RankedMutex`].
///
/// The held rank stays on the thread's stack across `wait` — the mutex
/// is reacquired before `wait` returns, so to other acquisitions by this
/// thread the lock was never given up.
#[derive(Debug, Default)]
pub struct RankedCondvar {
    inner: RawCondvar,
}

impl RankedCondvar {
    /// A new condvar.
    pub fn new() -> Self {
        Self {
            inner: RawCondvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and waits for a notify; the
    /// mutex is reacquired before this returns.
    pub fn wait<T>(&self, guard: &mut RankedMutexGuard<'_, T>) {
        self.inner.wait(&mut guard.raw);
    }

    /// Wakes every thread waiting on this condvar.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one thread waiting on this condvar.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

/// A reader-writer lock with a declared rank in the hierarchy.
///
/// Readers and writers both occupy the rank: a read lock can still
/// deadlock against a writer queued behind it, so the discipline applies
/// to shared acquisitions too. Not loom-swapped — the model checker has
/// no RwLock shim and no current model needs one.
#[derive(Debug)]
pub struct RankedRwLock<T> {
    rank: u16,
    name: &'static str,
    inner: parking_lot::RwLock<T>,
}

impl<T> RankedRwLock<T> {
    /// A new rwlock at `rank` named as in the DESIGN.md §15 table.
    pub fn new(rank: u16, name: &'static str, value: T) -> Self {
        Self {
            rank,
            name,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Acquires a shared read lock under the rank discipline.
    pub fn read(&self) -> RankedRwLockReadGuard<'_, T> {
        held::acquired(self.rank, self.name);
        RankedRwLockReadGuard {
            raw: self.inner.read(),
            rank: self.rank,
        }
    }

    /// Acquires the exclusive write lock under the rank discipline.
    pub fn write(&self) -> RankedRwLockWriteGuard<'_, T> {
        held::acquired(self.rank, self.name);
        RankedRwLockWriteGuard {
            raw: self.inner.write(),
            rank: self.rank,
        }
    }
}

/// Shared-read guard of a [`RankedRwLock`].
pub struct RankedRwLockReadGuard<'a, T> {
    raw: parking_lot::RwLockReadGuard<'a, T>,
    rank: u16,
}

impl<T> Deref for RankedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.raw
    }
}

impl<T> Drop for RankedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        held::released(self.rank);
    }
}

/// Exclusive-write guard of a [`RankedRwLock`].
pub struct RankedRwLockWriteGuard<'a, T> {
    raw: parking_lot::RwLockWriteGuard<'a, T>,
    rank: u16,
}

impl<T> Deref for RankedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.raw
    }
}

impl<T> DerefMut for RankedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.raw
    }
}

impl<T> Drop for RankedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        held::released(self.rank);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_allowed() {
        let a = RankedMutex::new(rank::SERVICE_TENANTS, "service.tenants", 1);
        let b = RankedMutex::new(rank::DATASET_STORE, "dataset.inner", 2);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn out_of_order_release_keeps_stack_consistent() {
        let a = RankedMutex::new(rank::SERVICE_TENANTS, "service.tenants", ());
        let b = RankedMutex::new(rank::DATASET_STORE, "dataset.inner", ());
        let c = RankedMutex::new(rank::BLOCKSTORE_FILES, "blockstore.files", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the lower rank first
        let gc = c.lock(); // still ascending relative to what's held
        drop(gb);
        drop(gc);
        let _ga = a.lock(); // stack must be empty again
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    fn descending_acquisition_panics() {
        let result = std::thread::spawn(|| {
            let hi = RankedMutex::new(rank::BLOCKSTORE_FILES, "blockstore.files", ());
            let lo = RankedMutex::new(rank::SERVICE_TENANTS, "service.tenants", ());
            let _ghi = hi.lock();
            let _glo = lo.lock();
        })
        .join();
        let err = result.expect_err("descending acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("lock-rank violation"), "got: {msg}");
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    fn rwlock_read_occupies_the_rank() {
        let rw = RankedRwLock::new(rank::BLOCKSTORE_FILES, "blockstore.files", ());
        let lo = RankedMutex::new(rank::DATASET_STORE, "dataset.inner", ());
        let result = std::thread::spawn(move || {
            let _r = rw.read();
            let _g = lo.lock();
        })
        .join();
        assert!(result.is_err(), "read lock must enforce the rank too");
    }
}
