//! Long-running multi-tenant clustering service (DESIGN.md §14).
//!
//! [`ClusterService`] hosts many named datasets (*tenants*) over one
//! shared, memory-budgeted [`DatasetStore`]: every tenant's row blocks
//! compete for the same cache budget, so cold datasets spill through
//! the segmented codec and hot ones stay resident. The service itself
//! is engine-agnostic — a tenant is anything implementing [`Tenant`]
//! (the P3C+ incremental Light engine lives in `p3c-core`, which
//! depends on this crate, not the other way round).
//!
//! Three concerns live here:
//!
//! * **Routing** — name → tenant, with per-tenant locking so appends to
//!   different datasets proceed concurrently while operations on one
//!   dataset serialize.
//! * **Admission** — re-cluster jobs declare a working-set estimate and
//!   are admitted against a configurable byte budget: a job waits until
//!   the in-flight total leaves room, except that an idle service
//!   always admits one job (an oversized dataset degrades to serial
//!   execution instead of deadlocking).
//! * **Metrics** — monotonic operation counters, exposed together with
//!   the store's cache counters as the service's operations surface.

use crate::dataset::DatasetStore;
use crate::sync::{rank, RankedCondvar, RankedMutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One incrementally maintained dataset hosted by a [`ClusterService`].
///
/// All row payloads live in the shared [`DatasetStore`] passed to every
/// method — the tenant's own state should hold only maintained
/// statistics and metadata, so the store's budget governs the service's
/// row-data footprint.
pub trait Tenant: Send + 'static {
    /// An appended/retracted unit of rows.
    type Block: Send;
    /// The model a re-cluster produces.
    type Model: Send;

    /// Folds a block into the maintained state; returns its id.
    fn append(&mut self, store: &DatasetStore, block: Self::Block) -> Result<u64, String>;

    /// Removes a previously appended block by id; `Ok(false)` if no
    /// live block has that id.
    fn retract(&mut self, store: &DatasetStore, id: u64) -> Result<bool, String>;

    /// Recomputes the model over the cumulative data.
    fn recluster(&mut self, store: &DatasetStore) -> Result<Self::Model, String>;

    /// Resident bytes of the maintained state (reporting).
    fn mem_bytes(&self) -> usize;

    /// Working-set estimate of one re-cluster job (admission).
    fn recluster_estimate(&self) -> usize;

    /// Releases everything the tenant stored; called on drop/shutdown.
    fn drop_data(&mut self, store: &DatasetStore);
}

/// Service-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No tenant with that name.
    UnknownDataset(String),
    /// `create` on a name that is already hosted.
    DatasetExists(String),
    /// The tenant's engine reported an error.
    Tenant(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownDataset(name) => write!(f, "unknown dataset `{name}`"),
            ServiceError::DatasetExists(name) => write!(f, "dataset `{name}` already exists"),
            ServiceError::Tenant(msg) => write!(f, "tenant error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Snapshot of the service's monotonic operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Blocks appended across all tenants.
    pub appends: u64,
    /// Blocks retracted across all tenants.
    pub retracts: u64,
    /// Re-cluster jobs completed.
    pub reclusters: u64,
    /// Re-cluster jobs that had to wait for budget headroom.
    pub admission_waits: u64,
}

#[derive(Default)]
struct MetricCells {
    appends: AtomicU64,
    retracts: AtomicU64,
    reclusters: AtomicU64,
    admission_waits: AtomicU64,
}

impl MetricCells {
    fn bump(cell: &AtomicU64) {
        // audit: relaxed-ok — monotonic metric counter.
        cell.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServiceMetrics {
        // Monotonic metric counters; a snapshot need not be
        // cross-counter consistent.
        // audit: relaxed-ok — monotonic metric counter read.
        let appends = self.appends.load(Ordering::Relaxed);
        // audit: relaxed-ok — as above.
        let retracts = self.retracts.load(Ordering::Relaxed);
        // audit: relaxed-ok — as above.
        let reclusters = self.reclusters.load(Ordering::Relaxed);
        // audit: relaxed-ok — as above.
        let admission_waits = self.admission_waits.load(Ordering::Relaxed);
        ServiceMetrics {
            appends,
            retracts,
            reclusters,
            admission_waits,
        }
    }
}

#[derive(Default)]
struct AdmissionState {
    in_flight_bytes: usize,
    in_flight_jobs: usize,
}

/// Byte-budgeted admission for re-cluster jobs: a job is admitted when
/// its estimate fits under the budget alongside the jobs already in
/// flight, or when nothing is in flight (one oversized job is always
/// allowed through rather than deadlocking).
///
/// Public so the admission Condvar protocol can be model-checked from
/// the loom integration tests; [`ClusterService`] is the intended user.
pub struct Admission {
    budget: Option<usize>,
    state: RankedMutex<AdmissionState>,
    cv: RankedCondvar,
}

impl Admission {
    /// Admission against `budget` summed working-set bytes
    /// (`None` = unbounded, never waits).
    pub fn new(budget: Option<usize>) -> Self {
        Self {
            budget,
            state: RankedMutex::new(
                rank::SERVICE_ADMISSION,
                "service.admission",
                AdmissionState::default(),
            ),
            cv: RankedCondvar::new(),
        }
    }

    /// Blocks until admitted; returns whether the job had to wait.
    pub fn admit(&self, bytes: usize) -> bool {
        let mut state = self.state.lock();
        let mut waited = false;
        while let Some(budget) = self.budget {
            let fits = state.in_flight_bytes.saturating_add(bytes) <= budget;
            if fits || state.in_flight_jobs == 0 {
                break;
            }
            waited = true;
            self.cv.wait(&mut state);
        }
        state.in_flight_jobs += 1;
        state.in_flight_bytes = state.in_flight_bytes.saturating_add(bytes);
        waited
    }

    /// Returns a finished job's bytes to the budget and wakes waiters.
    pub fn release(&self, bytes: usize) {
        let mut state = self.state.lock();
        state.in_flight_jobs -= 1;
        state.in_flight_bytes = state.in_flight_bytes.saturating_sub(bytes);
        drop(state);
        self.cv.notify_all();
    }

    /// Whether a job of `bytes` would have to wait right now (tests and
    /// loom models).
    pub fn would_wait(&self, bytes: usize) -> bool {
        let state = self.state.lock();
        match self.budget {
            Some(budget) => {
                state.in_flight_jobs > 0 && state.in_flight_bytes.saturating_add(bytes) > budget
            }
            None => false,
        }
    }
}

/// Releases admission on drop, so a panicking re-cluster job cannot
/// leak its budget share.
struct AdmissionGuard<'a> {
    admission: &'a Admission,
    bytes: usize,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.admission.release(self.bytes);
    }
}

/// Multi-tenant clustering service over one shared budgeted store.
pub struct ClusterService<T: Tenant> {
    store: Arc<DatasetStore>,
    tenants: RankedMutex<BTreeMap<String, Arc<RankedMutex<T>>>>,
    admission: Admission,
    metrics: MetricCells,
}

impl<T: Tenant> ClusterService<T> {
    /// New service over `store`; `job_budget` bounds the summed
    /// working-set estimates of concurrently running re-cluster jobs
    /// (`None` = unbounded).
    pub fn new(store: Arc<DatasetStore>, job_budget: Option<usize>) -> Self {
        Self {
            store,
            tenants: RankedMutex::new(rank::SERVICE_TENANTS, "service.tenants", BTreeMap::new()),
            admission: Admission::new(job_budget),
            metrics: MetricCells::default(),
        }
    }

    /// The shared dataset store (cache metrics, direct inspection).
    pub fn store(&self) -> &Arc<DatasetStore> {
        &self.store
    }

    /// Hosted dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tenants.lock().keys().cloned().collect()
    }

    /// Operation counters.
    pub fn metrics(&self) -> ServiceMetrics {
        self.metrics.snapshot()
    }

    fn tenant(&self, name: &str) -> Result<Arc<RankedMutex<T>>, ServiceError> {
        self.tenants
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))
    }

    /// Hosts a new tenant under `name`.
    pub fn create(&self, name: &str, tenant: T) -> Result<(), ServiceError> {
        let mut tenants = self.tenants.lock();
        if tenants.contains_key(name) {
            return Err(ServiceError::DatasetExists(name.to_string()));
        }
        tenants.insert(
            name.to_string(),
            Arc::new(RankedMutex::new(
                rank::SERVICE_TENANT,
                "service.tenant",
                tenant,
            )),
        );
        Ok(())
    }

    /// Removes the named tenant and releases its stored data.
    pub fn drop_dataset(&self, name: &str) -> Result<(), ServiceError> {
        let tenant = self
            .tenants
            .lock()
            .remove(name)
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))?;
        tenant.lock().drop_data(&self.store);
        Ok(())
    }

    /// Appends a block to the named dataset; returns the block id.
    pub fn append(&self, name: &str, block: T::Block) -> Result<u64, ServiceError> {
        let tenant = self.tenant(name)?;
        let id = tenant
            .lock()
            .append(&self.store, block)
            .map_err(ServiceError::Tenant)?;
        MetricCells::bump(&self.metrics.appends);
        Ok(id)
    }

    /// Retracts block `id` from the named dataset; `Ok(false)` if the
    /// id is not live.
    pub fn retract(&self, name: &str, id: u64) -> Result<bool, ServiceError> {
        let tenant = self.tenant(name)?;
        let hit = tenant
            .lock()
            .retract(&self.store, id)
            .map_err(ServiceError::Tenant)?;
        if hit {
            MetricCells::bump(&self.metrics.retracts);
        }
        Ok(hit)
    }

    /// Re-clusters the named dataset under admission control and
    /// returns the tenant's model.
    pub fn recluster(&self, name: &str) -> Result<T::Model, ServiceError> {
        let tenant = self.tenant(name)?;
        let estimate = tenant.lock().recluster_estimate();
        if self.admission.admit(estimate) {
            MetricCells::bump(&self.metrics.admission_waits);
        }
        let _guard = AdmissionGuard {
            admission: &self.admission,
            bytes: estimate,
        };
        let model = tenant
            .lock()
            .recluster(&self.store)
            .map_err(ServiceError::Tenant)?;
        MetricCells::bump(&self.metrics.reclusters);
        Ok(model)
    }

    /// Runs `f` with shared access to the named tenant (reporting:
    /// per-dataset stats without going through an operation).
    pub fn with_tenant<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ServiceError> {
        let tenant = self.tenant(name)?;
        let mut guard = tenant.lock();
        Ok(f(&mut guard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// Tenant stub: blocks are row counts, the model is the running
    /// total at recluster time.
    struct FakeTenant {
        blocks: BTreeMap<u64, usize>,
        next_id: u64,
        estimate: usize,
    }

    impl FakeTenant {
        fn new(estimate: usize) -> Self {
            Self {
                blocks: BTreeMap::new(),
                next_id: 0,
                estimate,
            }
        }
    }

    impl Tenant for FakeTenant {
        type Block = usize;
        type Model = usize;

        fn append(&mut self, _store: &DatasetStore, block: usize) -> Result<u64, String> {
            let id = self.next_id;
            self.next_id += 1;
            self.blocks.insert(id, block);
            Ok(id)
        }

        fn retract(&mut self, _store: &DatasetStore, id: u64) -> Result<bool, String> {
            Ok(self.blocks.remove(&id).is_some())
        }

        fn recluster(&mut self, _store: &DatasetStore) -> Result<usize, String> {
            Ok(self.blocks.values().sum())
        }

        fn mem_bytes(&self) -> usize {
            self.blocks.len() * 16
        }

        fn recluster_estimate(&self) -> usize {
            self.estimate
        }

        fn drop_data(&mut self, _store: &DatasetStore) {
            self.blocks.clear();
        }
    }

    fn service(budget: Option<usize>) -> ClusterService<FakeTenant> {
        ClusterService::new(Arc::new(DatasetStore::new()), budget)
    }

    #[test]
    fn routes_operations_to_named_tenants() {
        let svc = service(None);
        svc.create("a", FakeTenant::new(10)).unwrap();
        svc.create("b", FakeTenant::new(10)).unwrap();
        assert_eq!(
            svc.create("a", FakeTenant::new(10)),
            Err(ServiceError::DatasetExists("a".into()))
        );
        let id = svc.append("a", 100).unwrap();
        svc.append("b", 7).unwrap();
        assert_eq!(svc.recluster("a").unwrap(), 100);
        assert_eq!(svc.recluster("b").unwrap(), 7);
        assert!(svc.retract("a", id).unwrap());
        assert!(!svc.retract("a", id).unwrap());
        assert_eq!(svc.recluster("a").unwrap(), 0);
        assert_eq!(
            svc.append("c", 1),
            Err(ServiceError::UnknownDataset("c".into()))
        );
        let m = svc.metrics();
        assert_eq!((m.appends, m.retracts, m.reclusters), (2, 1, 3));
        assert_eq!(svc.names(), vec!["a".to_string(), "b".to_string()]);
        svc.drop_dataset("a").unwrap();
        assert_eq!(svc.names(), vec!["b".to_string()]);
    }

    #[test]
    fn admission_fits_jobs_under_budget() {
        let adm = Admission::new(Some(100));
        adm.admit(60);
        assert!(!adm.would_wait(40), "fits exactly");
        assert!(adm.would_wait(41), "over budget must wait");
        adm.release(60);
        assert!(!adm.would_wait(41), "idle service admits anything");
    }

    #[test]
    fn oversized_job_admitted_when_idle() {
        let adm = Admission::new(Some(100));
        assert!(!adm.admit(1000), "idle: no wait even over budget");
        adm.release(1000);
    }

    #[test]
    fn blocked_job_admitted_only_after_release() {
        let adm = Arc::new(Admission::new(Some(100)));
        let order = Arc::new(Mutex::new(Vec::new()));
        adm.admit(80);
        order.lock().push("admit-1");
        let t = {
            let adm = Arc::clone(&adm);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let waited = adm.admit(80);
                order.lock().push("admit-2");
                adm.release(80);
                waited
            })
        };
        order.lock().push("release-1");
        adm.release(80);
        let waited = t.join().unwrap();
        let order = order.lock();
        let pos = |tag| order.iter().position(|&t| t == tag).unwrap();
        assert!(pos("release-1") < pos("admit-2"), "{order:?}");
        // The second job may or may not have observed the wait (it can
        // race ahead of `admit-1`'s release), but if it waited, the
        // ordering above proves the budget gated it.
        let _ = waited;
    }

    #[test]
    fn recluster_waits_are_counted_when_budget_contended() {
        let svc = Arc::new(service(Some(100)));
        svc.create("big", FakeTenant::new(80)).unwrap();
        svc.append("big", 1).unwrap();
        // Serial jobs never contend.
        svc.recluster("big").unwrap();
        svc.recluster("big").unwrap();
        assert_eq!(svc.metrics().admission_waits, 0);
    }
}
