//! Long-running multi-tenant clustering service (DESIGN.md §14).
//!
//! [`ClusterService`] hosts many named datasets (*tenants*) over one
//! shared, memory-budgeted [`DatasetStore`]: every tenant's row blocks
//! compete for the same cache budget, so cold datasets spill through
//! the segmented codec and hot ones stay resident. The service itself
//! is engine-agnostic — a tenant is anything implementing [`Tenant`]
//! (the P3C+ incremental Light engine lives in `p3c-core`, which
//! depends on this crate, not the other way round).
//!
//! Three concerns live here:
//!
//! * **Routing** — name → tenant, with per-tenant locking so appends to
//!   different datasets proceed concurrently while operations on one
//!   dataset serialize.
//! * **Admission** — re-cluster jobs declare a working-set estimate and
//!   are admitted against a configurable byte budget: a job waits until
//!   the in-flight total leaves room, except that an idle service
//!   always admits one job (an oversized dataset degrades to serial
//!   execution instead of deadlocking).
//! * **Metrics** — monotonic operation counters, exposed together with
//!   the store's cache counters as the service's operations surface.
//! * **Durability** (opt-in, DESIGN.md §16) — a per-tenant write-ahead
//!   journal plus periodic snapshots under a data directory. Every
//!   mutation is journaled *before* it is applied, snapshots bound the
//!   replay tail, and [`ClusterService::recover`] rehydrates every
//!   tenant on restart to a byte-identical state.

use crate::dataset::DatasetStore;
use crate::sync::{rank, RankedCondvar, RankedMutex};
use p3c_dataset::journal::{self, JournalWriter};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One incrementally maintained dataset hosted by a [`ClusterService`].
///
/// All row payloads live in the shared [`DatasetStore`] passed to every
/// method — the tenant's own state should hold only maintained
/// statistics and metadata, so the store's budget governs the service's
/// row-data footprint.
pub trait Tenant: Send + 'static {
    /// An appended/retracted unit of rows.
    type Block: Send;
    /// The model a re-cluster produces. `Sync` because the service
    /// publishes the last model behind an `Arc` for concurrent readers.
    type Model: Send + Sync;

    /// Folds a block into the maintained state; returns its id.
    fn append(&mut self, store: &DatasetStore, block: Self::Block) -> Result<u64, String>;

    /// Removes a previously appended block by id; `Ok(false)` if no
    /// live block has that id.
    fn retract(&mut self, store: &DatasetStore, id: u64) -> Result<bool, String>;

    /// Recomputes the model over the cumulative data.
    fn recluster(&mut self, store: &DatasetStore) -> Result<Self::Model, String>;

    /// Resident bytes of the maintained state (reporting).
    fn mem_bytes(&self) -> usize;

    /// Working-set estimate of one re-cluster job (admission).
    fn recluster_estimate(&self) -> usize;

    /// Releases everything the tenant stored; called on drop/shutdown.
    fn drop_data(&mut self, store: &DatasetStore);
}

/// A [`Tenant`] that can be persisted: exact codecs for its creation
/// parameters, its blocks, and its full maintained state, plus a stamp
/// that changes whenever its discretization (bin rule output) does.
///
/// All codecs must round-trip **bit-exactly** — recovery's contract is
/// that a replayed tenant re-clusters to the same fingerprint as a
/// from-scratch batch fit, and any f64 drift in a histogram or support
/// count breaks that.
pub trait DurableTenant: Tenant + Sized {
    /// Encodes the parameters needed to re-create this tenant empty.
    fn encode_create(&self) -> Vec<u8>;
    /// Re-creates an empty tenant from [`encode_create`] bytes.
    ///
    /// [`encode_create`]: DurableTenant::encode_create
    fn decode_create(name: &str, bytes: &[u8]) -> Result<Self, String>;
    /// Encodes one block for the journal.
    fn encode_block(block: &Self::Block) -> Vec<u8>;
    /// Decodes a journaled block.
    fn decode_block(bytes: &[u8]) -> Result<Self::Block, String>;
    /// Serializes the full maintained state, including live row
    /// payloads held in `store`.
    fn snapshot_state(&self, store: &DatasetStore) -> Result<Vec<u8>, String>;
    /// Rebuilds a tenant from [`snapshot_state`] bytes, re-seeding row
    /// payloads into `store`.
    ///
    /// [`snapshot_state`]: DurableTenant::snapshot_state
    fn restore_state(name: &str, bytes: &[u8], store: &DatasetStore) -> Result<Self, String>;
    /// An exact stamp of the current discretization (e.g. the bin
    /// count); a change after an apply is journaled as a bin-rule step
    /// and re-verified on replay.
    fn discretization_stamp(&self) -> u64;
}

/// Service-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No tenant with that name.
    UnknownDataset(String),
    /// `create` on a name that is already hosted.
    DatasetExists(String),
    /// The tenant's engine reported an error.
    Tenant(String),
    /// The journal/snapshot layer failed (I/O, corrupt state).
    Durability(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownDataset(name) => write!(f, "unknown dataset `{name}`"),
            ServiceError::DatasetExists(name) => write!(f, "dataset `{name}` already exists"),
            ServiceError::Tenant(msg) => write!(f, "tenant error: {msg}"),
            ServiceError::Durability(msg) => write!(f, "durability error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Snapshot of the service's monotonic operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Blocks appended across all tenants.
    pub appends: u64,
    /// Blocks retracted across all tenants.
    pub retracts: u64,
    /// Re-cluster jobs completed.
    pub reclusters: u64,
    /// Re-cluster jobs that had to wait for budget headroom.
    pub admission_waits: u64,
}

#[derive(Default)]
struct MetricCells {
    appends: AtomicU64,
    retracts: AtomicU64,
    reclusters: AtomicU64,
    admission_waits: AtomicU64,
}

impl MetricCells {
    fn bump(cell: &AtomicU64) {
        // audit: relaxed-ok — monotonic metric counter.
        cell.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServiceMetrics {
        // Monotonic metric counters; a snapshot need not be
        // cross-counter consistent.
        // audit: relaxed-ok — monotonic metric counter read.
        let appends = self.appends.load(Ordering::Relaxed);
        // audit: relaxed-ok — as above.
        let retracts = self.retracts.load(Ordering::Relaxed);
        // audit: relaxed-ok — as above.
        let reclusters = self.reclusters.load(Ordering::Relaxed);
        // audit: relaxed-ok — as above.
        let admission_waits = self.admission_waits.load(Ordering::Relaxed);
        ServiceMetrics {
            appends,
            retracts,
            reclusters,
            admission_waits,
        }
    }
}

#[derive(Default)]
struct AdmissionState {
    in_flight_bytes: usize,
    in_flight_jobs: usize,
}

/// Byte-budgeted admission for re-cluster jobs: a job is admitted when
/// its estimate fits under the budget alongside the jobs already in
/// flight, or when nothing is in flight (one oversized job is always
/// allowed through rather than deadlocking).
///
/// Public so the admission Condvar protocol can be model-checked from
/// the loom integration tests; [`ClusterService`] is the intended user.
pub struct Admission {
    budget: Option<usize>,
    state: RankedMutex<AdmissionState>,
    cv: RankedCondvar,
}

impl Admission {
    /// Admission against `budget` summed working-set bytes
    /// (`None` = unbounded, never waits).
    pub fn new(budget: Option<usize>) -> Self {
        Self {
            budget,
            state: RankedMutex::new(
                rank::SERVICE_ADMISSION,
                "service.admission",
                AdmissionState::default(),
            ),
            cv: RankedCondvar::new(),
        }
    }

    /// Blocks until admitted; returns whether the job had to wait.
    pub fn admit(&self, bytes: usize) -> bool {
        let mut state = self.state.lock();
        let mut waited = false;
        while let Some(budget) = self.budget {
            let fits = state.in_flight_bytes.saturating_add(bytes) <= budget;
            if fits || state.in_flight_jobs == 0 {
                break;
            }
            waited = true;
            self.cv.wait(&mut state);
        }
        state.in_flight_jobs += 1;
        state.in_flight_bytes = state.in_flight_bytes.saturating_add(bytes);
        waited
    }

    /// Returns a finished job's bytes to the budget and wakes waiters.
    pub fn release(&self, bytes: usize) {
        let mut state = self.state.lock();
        state.in_flight_jobs -= 1;
        state.in_flight_bytes = state.in_flight_bytes.saturating_sub(bytes);
        drop(state);
        self.cv.notify_all();
    }

    /// Whether a job of `bytes` would have to wait right now (tests and
    /// loom models).
    pub fn would_wait(&self, bytes: usize) -> bool {
        let state = self.state.lock();
        match self.budget {
            Some(budget) => {
                state.in_flight_jobs > 0 && state.in_flight_bytes.saturating_add(bytes) > budget
            }
            None => false,
        }
    }
}

/// Releases admission on drop, so a panicking re-cluster job cannot
/// leak its budget share.
struct AdmissionGuard<'a> {
    admission: &'a Admission,
    bytes: usize,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.admission.release(self.bytes);
    }
}

// --------------------------------------------------------- durability ---

/// Journal record op: tenant created (payload: name, create bytes).
const OP_CREATE: u8 = 1;
/// Journal record op: block appended (payload: encoded block).
const OP_APPEND: u8 = 2;
/// Journal record op: block retracted (payload: block id).
const OP_RETRACT: u8 = 3;
/// Journal record op: discretization changed after an apply (payload:
/// the new stamp) — verified, not applied, on replay.
const OP_BINSTEP: u8 = 4;

/// Erased [`DurableTenant`] entry points, stored as plain fn pointers
/// so the hot-path operations (`append`/`retract`), which are generic
/// over any [`Tenant`], can journal without the `DurableTenant` bound.
struct WalHooks<T: Tenant> {
    encode_create: fn(&T) -> Vec<u8>,
    encode_block: fn(&T::Block) -> Vec<u8>,
    snapshot_state: fn(&T, &DatasetStore) -> Result<Vec<u8>, String>,
    discretization_stamp: fn(&T) -> u64,
}

/// Service-wide durability configuration (present iff built with
/// [`ClusterService::with_durability`]).
struct Durability<T: Tenant> {
    dir: PathBuf,
    /// Take a snapshot and truncate the journal after this many
    /// journal records per tenant; 0 = never snapshot.
    snapshot_every: u64,
    hooks: WalHooks<T>,
}

/// The journaling side-state of one durable tenant. Lives inside the
/// tenant's slot, so journal writes happen under the tenant lock and
/// the on-disk record order is exactly the apply order. The file I/O
/// under that lock is intentional — the write-ahead property requires
/// the record to be on disk before the mutation applies, and only this
/// tenant's operations are serialized behind it (DESIGN.md §16).
struct TenantWal {
    writer: JournalWriter,
    name: String,
    dir: PathBuf,
    /// Journal records written since the last snapshot (replay cost).
    since_snapshot: u64,
    /// Last journaled discretization stamp.
    stamp: u64,
}

/// One hosted tenant plus its optional journaling state.
struct Slot<T: Tenant> {
    tenant: T,
    wal: Option<TenantWal>,
}

/// Writes one journal record, counting it toward the snapshot cadence.
fn wal_log(wal: &mut TenantWal, op: u8, payload: &[u8]) -> Result<(), ServiceError> {
    wal.writer
        .record(op, payload)
        .map_err(|e| ServiceError::Durability(format!("journal write for `{}`: {e}", wal.name)))?;
    wal.since_snapshot += 1;
    Ok(())
}

/// What a [`ClusterService::recover`] pass found and replayed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tenants rehydrated and re-registered.
    pub tenants: usize,
    /// Tenants whose state came from a snapshot (vs. journal-only).
    pub snapshots_loaded: usize,
    /// Journal records replayed across all tenants — bounded by the
    /// records written since each tenant's last snapshot.
    pub records_replayed: u64,
}

/// Multi-tenant clustering service over one shared budgeted store.
pub struct ClusterService<T: Tenant> {
    store: Arc<DatasetStore>,
    tenants: RankedMutex<BTreeMap<String, Arc<RankedMutex<Slot<T>>>>>,
    /// Last model each tenant published, pinned behind an `Arc` so
    /// readers keep a coherent clustering while appends continue.
    published: RankedMutex<BTreeMap<String, Arc<T::Model>>>,
    admission: Admission,
    metrics: MetricCells,
    durability: Option<Durability<T>>,
}

impl<T: Tenant> ClusterService<T> {
    /// New service over `store`; `job_budget` bounds the summed
    /// working-set estimates of concurrently running re-cluster jobs
    /// (`None` = unbounded).
    pub fn new(store: Arc<DatasetStore>, job_budget: Option<usize>) -> Self {
        Self {
            store,
            tenants: RankedMutex::new(rank::SERVICE_TENANTS, "service.tenants", BTreeMap::new()),
            published: RankedMutex::new(
                rank::SERVICE_PUBLISHED,
                "service.published",
                BTreeMap::new(),
            ),
            admission: Admission::new(job_budget),
            metrics: MetricCells::default(),
            durability: None,
        }
    }

    /// The shared dataset store (cache metrics, direct inspection).
    pub fn store(&self) -> &Arc<DatasetStore> {
        &self.store
    }

    /// Hosted dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tenants.lock().keys().cloned().collect()
    }

    /// Operation counters.
    pub fn metrics(&self) -> ServiceMetrics {
        self.metrics.snapshot()
    }

    fn tenant(&self, name: &str) -> Result<Arc<RankedMutex<Slot<T>>>, ServiceError> {
        self.tenants
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))
    }

    /// Hosts a new tenant under `name`. On a durable service this also
    /// opens the tenant's journal and logs the create record before the
    /// tenant is registered — the registry lock is held across that
    /// file I/O so two racing creates cannot share a journal file.
    pub fn create(&self, name: &str, tenant: T) -> Result<(), ServiceError> {
        let mut tenants = self.tenants.lock();
        if tenants.contains_key(name) {
            return Err(ServiceError::DatasetExists(name.to_string()));
        }
        let wal = match self.durability.as_ref() {
            None => None,
            Some(d) => {
                let dir = journal::tenant_dir(&d.dir, name);
                std::fs::create_dir_all(&dir).map_err(|e| {
                    ServiceError::Durability(format!("create tenant dir for `{name}`: {e}"))
                })?;
                let writer =
                    JournalWriter::create(&dir.join(journal::JOURNAL_FILE), 0).map_err(|e| {
                        ServiceError::Durability(format!("open journal for `{name}`: {e}"))
                    })?;
                let mut payload = Vec::new();
                journal::put_str(&mut payload, name);
                journal::put_bytes(&mut payload, &(d.hooks.encode_create)(&tenant));
                let mut wal = TenantWal {
                    writer,
                    name: name.to_string(),
                    dir,
                    since_snapshot: 0,
                    stamp: (d.hooks.discretization_stamp)(&tenant),
                };
                wal_log(&mut wal, OP_CREATE, &payload)?;
                Some(wal)
            }
        };
        tenants.insert(
            name.to_string(),
            Arc::new(RankedMutex::new(
                rank::SERVICE_TENANT,
                "service.tenant",
                Slot { tenant, wal },
            )),
        );
        Ok(())
    }

    /// Removes the named tenant, releases its stored data, and (on a
    /// durable service) deletes its journal and snapshot so a restart
    /// does not resurrect it.
    pub fn drop_dataset(&self, name: &str) -> Result<(), ServiceError> {
        let tenant = self
            .tenants
            .lock()
            .remove(name)
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))?;
        self.published.lock().remove(name);
        tenant.lock().tenant.drop_data(&self.store);
        if let Some(d) = self.durability.as_ref() {
            let dir = journal::tenant_dir(&d.dir, name);
            let _ = std::fs::remove_dir_all(&dir);
        }
        Ok(())
    }

    /// Appends a block to the named dataset; returns the block id. On a
    /// durable service the block is journaled before it is applied.
    pub fn append(&self, name: &str, block: T::Block) -> Result<u64, ServiceError> {
        let tenant = self.tenant(name)?;
        let mut slot = tenant.lock();
        if let (Some(d), Some(wal)) = (self.durability.as_ref(), slot.wal.as_mut()) {
            let mut payload = Vec::new();
            journal::put_bytes(&mut payload, &(d.hooks.encode_block)(&block));
            wal_log(wal, OP_APPEND, &payload)?;
        }
        let id = slot
            .tenant
            .append(&self.store, block)
            .map_err(ServiceError::Tenant)?;
        self.roll_wal(&mut slot)?;
        drop(slot);
        MetricCells::bump(&self.metrics.appends);
        Ok(id)
    }

    /// Retracts block `id` from the named dataset; `Ok(false)` if the
    /// id is not live. Journaled before it is applied on a durable
    /// service (a miss replays as the same no-op).
    pub fn retract(&self, name: &str, id: u64) -> Result<bool, ServiceError> {
        let tenant = self.tenant(name)?;
        let mut slot = tenant.lock();
        if let Some(wal) = slot.wal.as_mut() {
            let mut payload = Vec::new();
            journal::put_u64(&mut payload, id);
            wal_log(wal, OP_RETRACT, &payload)?;
        }
        let hit = slot
            .tenant
            .retract(&self.store, id)
            .map_err(ServiceError::Tenant)?;
        self.roll_wal(&mut slot)?;
        drop(slot);
        if hit {
            MetricCells::bump(&self.metrics.retracts);
        }
        Ok(hit)
    }

    /// After an applied mutation: journals a discretization change and
    /// takes a snapshot (truncating the journal) when the cadence says
    /// so. Called under the tenant lock.
    fn roll_wal(&self, slot: &mut Slot<T>) -> Result<(), ServiceError> {
        let Some(d) = self.durability.as_ref() else {
            return Ok(());
        };
        let Slot { tenant, wal } = slot;
        let Some(wal) = wal.as_mut() else {
            return Ok(());
        };
        let stamp = (d.hooks.discretization_stamp)(tenant);
        if stamp != wal.stamp {
            let mut payload = Vec::new();
            journal::put_u64(&mut payload, stamp);
            wal_log(wal, OP_BINSTEP, &payload)?;
            wal.stamp = stamp;
        }
        if d.snapshot_every > 0 && wal.since_snapshot >= d.snapshot_every {
            let state =
                (d.hooks.snapshot_state)(tenant, &self.store).map_err(ServiceError::Durability)?;
            let mut body = Vec::new();
            journal::put_str(&mut body, &wal.name);
            journal::put_bytes(&mut body, &state);
            // The snapshot covers every record written so far; only
            // after it is durably renamed into place is the journal
            // truncated, so a crash in between merely replays records
            // the snapshot already covers (skipped by seq).
            let covered = wal.writer.next_seq().saturating_sub(1);
            journal::write_snapshot(&wal.dir.join(journal::SNAPSHOT_FILE), covered, &body)
                .map_err(|e| {
                    ServiceError::Durability(format!("snapshot write for `{}`: {e}", wal.name))
                })?;
            wal.writer.reset().map_err(|e| {
                ServiceError::Durability(format!("journal truncate for `{}`: {e}", wal.name))
            })?;
            wal.since_snapshot = 0;
        }
        Ok(())
    }

    /// Re-clusters the named dataset under admission control, publishes
    /// the model, and returns it pinned behind an `Arc`.
    ///
    /// The admitted byte count must cover what the job actually uses,
    /// so the estimate is re-read under the tenant lock after admission
    /// and the job re-admits at the larger figure if a concurrent
    /// append grew the working set while it waited.
    pub fn recluster(&self, name: &str) -> Result<Arc<T::Model>, ServiceError> {
        let tenant = self.tenant(name)?;
        let mut estimate = tenant.lock().tenant.recluster_estimate();
        loop {
            if self.admission.admit(estimate) {
                MetricCells::bump(&self.metrics.admission_waits);
            }
            let admission_guard = AdmissionGuard {
                admission: &self.admission,
                bytes: estimate,
            };
            let mut slot = tenant.lock();
            let now = slot.tenant.recluster_estimate();
            if now > estimate {
                drop(slot);
                drop(admission_guard);
                estimate = now;
                continue;
            }
            let model = slot
                .tenant
                .recluster(&self.store)
                .map_err(ServiceError::Tenant)?;
            let model = Arc::new(model);
            // Publish while still holding the tenant lock so the
            // "last published model" order matches the tenant's own
            // recluster serialization.
            self.published
                .lock()
                .insert(name.to_string(), Arc::clone(&model));
            drop(slot);
            drop(admission_guard);
            MetricCells::bump(&self.metrics.reclusters);
            return Ok(model);
        }
    }

    /// The last model the named tenant published, if any — readers hold
    /// the `Arc` while appends and re-clusters continue.
    pub fn last_model(&self, name: &str) -> Option<Arc<T::Model>> {
        self.published.lock().get(name).cloned()
    }

    /// Runs `f` with shared access to the named tenant (reporting:
    /// per-dataset stats without going through an operation).
    pub fn with_tenant<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ServiceError> {
        let tenant = self.tenant(name)?;
        let mut guard = tenant.lock();
        Ok(f(&mut guard.tenant))
    }
}

impl<T: DurableTenant> ClusterService<T> {
    /// New durable service: every tenant journals its mutations under
    /// `data_dir` and snapshots after `snapshot_every` journal records
    /// (0 = journal only, never snapshot). Call
    /// [`recover`](ClusterService::recover) before serving to rehydrate
    /// tenants persisted by an earlier process.
    pub fn with_durability(
        store: Arc<DatasetStore>,
        job_budget: Option<usize>,
        data_dir: &Path,
        snapshot_every: u64,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(data_dir)?;
        let mut svc = Self::new(store, job_budget);
        svc.durability = Some(Durability {
            dir: data_dir.to_path_buf(),
            snapshot_every,
            hooks: WalHooks {
                encode_create: T::encode_create,
                encode_block: T::encode_block,
                snapshot_state: T::snapshot_state,
                discretization_stamp: T::discretization_stamp,
            },
        });
        Ok(svc)
    }

    /// Rehydrates every tenant found under the data directory from its
    /// snapshot plus journal tail and registers it with the service.
    ///
    /// Replay applies each journaled mutation exactly as the original
    /// operation did; a record whose apply failed originally fails
    /// identically on replay (the tenant is deterministic), so the
    /// recovered state is byte-identical to the pre-crash state as of
    /// the last intact journal record.
    pub fn recover(&self) -> Result<RecoveryReport, ServiceError> {
        let Some(d) = self.durability.as_ref() else {
            return Ok(RecoveryReport::default());
        };
        let mut report = RecoveryReport::default();
        let mut dirs: Vec<PathBuf> = Vec::new();
        let iter = std::fs::read_dir(&d.dir).map_err(|e| {
            ServiceError::Durability(format!("read data dir {}: {e}", d.dir.display()))
        })?;
        for entry in iter {
            let entry =
                entry.map_err(|e| ServiceError::Durability(format!("read data dir: {e}")))?;
            if entry.path().is_dir() {
                dirs.push(entry.path());
            }
        }
        dirs.sort();
        let mut recovered = Vec::new();
        for tdir in &dirs {
            if let Some(pair) = recover_tenant::<T>(&self.store, tdir, &mut report)? {
                recovered.push(pair);
            }
        }
        let mut tenants = self.tenants.lock();
        for (name, slot) in recovered {
            if tenants.contains_key(&name) {
                return Err(ServiceError::Durability(format!(
                    "tenant `{name}` recovered twice (colliding tenant directories)"
                )));
            }
            report.tenants += 1;
            tenants.insert(
                name,
                Arc::new(RankedMutex::new(
                    rank::SERVICE_TENANT,
                    "service.tenant",
                    slot,
                )),
            );
        }
        Ok(report)
    }
}

/// Rehydrates one tenant directory: snapshot (if any), then the journal
/// tail with `seq > covered_seq`. Returns `None` for a directory with
/// nothing durable in it (e.g. a crash before the create record hit the
/// disk).
fn recover_tenant<T: DurableTenant>(
    store: &DatasetStore,
    dir: &Path,
    report: &mut RecoveryReport,
) -> Result<Option<(String, Slot<T>)>, ServiceError> {
    let ctx = |e: String| ServiceError::Durability(format!("{}: {e}", dir.display()));
    let jour_path = dir.join(journal::JOURNAL_FILE);
    let snap = journal::read_snapshot(&dir.join(journal::SNAPSHOT_FILE))
        .map_err(|e| ctx(e.to_string()))?;
    let (records, valid_len) = journal::read_journal(&jour_path).map_err(|e| ctx(e.to_string()))?;
    let from_snapshot = snap.is_some();
    let mut covered = 0u64;
    let mut loaded = None;
    if let Some((cov, body)) = snap {
        let mut r = journal::ByteReader::new(&body);
        let parsed = (|| -> Result<(String, T), String> {
            let name = r.str()?;
            let state = r.bytes()?;
            r.finish()?;
            let tenant = T::restore_state(&name, state, store)?;
            Ok((name, tenant))
        })()
        .map_err(ctx)?;
        covered = cov;
        report.snapshots_loaded += 1;
        loaded = Some(parsed);
    }
    // Records at or below the snapshot's covered seq are already
    // folded into the snapshot state; without a snapshot nothing is
    // covered and replay starts at seq 0.
    let floor = if from_snapshot { covered + 1 } else { 0 };
    let mut tail = records.iter().filter(|rec| rec.seq >= floor);
    let (name, mut tenant) = match loaded {
        Some(pair) => pair,
        None => {
            let Some(first) = tail.next() else {
                return Ok(None);
            };
            if first.op != OP_CREATE {
                return Err(ctx(format!(
                    "journal does not start with a create record (op {})",
                    first.op
                )));
            }
            let mut r = journal::ByteReader::new(&first.payload);
            let parsed = (|| -> Result<(String, T), String> {
                let name = r.str()?;
                let bytes = r.bytes()?;
                r.finish()?;
                let tenant = T::decode_create(&name, bytes)?;
                Ok((name, tenant))
            })()
            .map_err(ctx)?;
            report.records_replayed += 1;
            parsed
        }
    };
    for rec in tail {
        match rec.op {
            OP_APPEND => {
                let mut r = journal::ByteReader::new(&rec.payload);
                let block = (|| -> Result<T::Block, String> {
                    let bytes = r.bytes()?;
                    r.finish()?;
                    T::decode_block(bytes)
                })()
                .map_err(ctx)?;
                // A failed apply failed deterministically at journal
                // time too; replay reproduces the failure and moves on.
                let _ = tenant.append(store, block);
            }
            OP_RETRACT => {
                let mut r = journal::ByteReader::new(&rec.payload);
                let id = (|| -> Result<u64, String> {
                    let id = r.u64()?;
                    r.finish()?;
                    Ok(id)
                })()
                .map_err(ctx)?;
                let _ = tenant.retract(store, id);
            }
            OP_BINSTEP => {
                let mut r = journal::ByteReader::new(&rec.payload);
                let stamp = (|| -> Result<u64, String> {
                    let stamp = r.u64()?;
                    r.finish()?;
                    Ok(stamp)
                })()
                .map_err(ctx)?;
                let replayed = T::discretization_stamp(&tenant);
                if replayed != stamp {
                    return Err(ctx(format!(
                        "replayed discretization stamp {replayed} does not match \
                         journaled stamp {stamp}"
                    )));
                }
            }
            OP_CREATE => {
                return Err(ctx("unexpected create record mid-journal".to_string()));
            }
            other => return Err(ctx(format!("unknown journal op {other}"))),
        }
        report.records_replayed += 1;
    }
    let next_seq = records
        .last()
        .map(|rec| rec.seq + 1)
        .unwrap_or(0)
        .max(floor);
    let writer =
        JournalWriter::open_end(&jour_path, valid_len, next_seq).map_err(|e| ctx(e.to_string()))?;
    let wal = TenantWal {
        writer,
        name: name.clone(),
        dir: dir.to_path_buf(),
        since_snapshot: records.len() as u64,
        stamp: T::discretization_stamp(&tenant),
    };
    Ok(Some((
        name,
        Slot {
            tenant,
            wal: Some(wal),
        },
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Handshake a gated tenant's recluster blocks on: it signals
    /// `entered` and then parks until the test sends on `release`.
    struct Gate {
        entered: mpsc::Sender<()>,
        release: Mutex<mpsc::Receiver<()>>,
    }

    /// Tenant stub: blocks are row counts, the model is the running
    /// total at recluster time. `estimates` is consumed one entry per
    /// `recluster_estimate` call (the last entry repeats), so tests can
    /// model a working set that grows between reads.
    struct FakeTenant {
        blocks: BTreeMap<u64, usize>,
        next_id: u64,
        estimates: Vec<usize>,
        estimate_calls: AtomicUsize,
        estimate_probe: Option<mpsc::Sender<()>>,
        gate: Option<Gate>,
    }

    impl FakeTenant {
        fn new(estimate: usize) -> Self {
            Self {
                blocks: BTreeMap::new(),
                next_id: 0,
                estimates: vec![estimate],
                estimate_calls: AtomicUsize::new(0),
                estimate_probe: None,
                gate: None,
            }
        }
    }

    impl Tenant for FakeTenant {
        type Block = usize;
        type Model = usize;

        fn append(&mut self, _store: &DatasetStore, block: usize) -> Result<u64, String> {
            let id = self.next_id;
            self.next_id += 1;
            self.blocks.insert(id, block);
            Ok(id)
        }

        fn retract(&mut self, _store: &DatasetStore, id: u64) -> Result<bool, String> {
            Ok(self.blocks.remove(&id).is_some())
        }

        fn recluster(&mut self, _store: &DatasetStore) -> Result<usize, String> {
            if let Some(gate) = &self.gate {
                gate.entered.send(()).ok();
                gate.release.lock().recv().ok();
            }
            Ok(self.blocks.values().sum())
        }

        fn mem_bytes(&self) -> usize {
            self.blocks.len() * 16
        }

        fn recluster_estimate(&self) -> usize {
            if let Some(probe) = &self.estimate_probe {
                probe.send(()).ok();
            }
            let call = self.estimate_calls.fetch_add(1, Ordering::SeqCst);
            self.estimates[call.min(self.estimates.len() - 1)]
        }

        fn drop_data(&mut self, _store: &DatasetStore) {
            self.blocks.clear();
        }
    }

    impl DurableTenant for FakeTenant {
        fn encode_create(&self) -> Vec<u8> {
            let mut buf = Vec::new();
            journal::put_u64(&mut buf, self.estimates[0] as u64);
            buf
        }

        fn decode_create(_name: &str, bytes: &[u8]) -> Result<Self, String> {
            let mut r = journal::ByteReader::new(bytes);
            let estimate = r.u64()? as usize;
            r.finish()?;
            Ok(FakeTenant::new(estimate))
        }

        fn encode_block(block: &usize) -> Vec<u8> {
            let mut buf = Vec::new();
            journal::put_usize(&mut buf, *block);
            buf
        }

        fn decode_block(bytes: &[u8]) -> Result<usize, String> {
            let mut r = journal::ByteReader::new(bytes);
            let block = r.usize()?;
            r.finish()?;
            Ok(block)
        }

        fn snapshot_state(&self, _store: &DatasetStore) -> Result<Vec<u8>, String> {
            let mut buf = Vec::new();
            journal::put_u64(&mut buf, self.estimates[0] as u64);
            journal::put_u64(&mut buf, self.next_id);
            journal::put_usize(&mut buf, self.blocks.len());
            for (id, rows) in &self.blocks {
                journal::put_u64(&mut buf, *id);
                journal::put_usize(&mut buf, *rows);
            }
            Ok(buf)
        }

        fn restore_state(_name: &str, bytes: &[u8], _store: &DatasetStore) -> Result<Self, String> {
            let mut r = journal::ByteReader::new(bytes);
            let estimate = r.u64()? as usize;
            let next_id = r.u64()?;
            let n = r.usize()?;
            let mut blocks = BTreeMap::new();
            for _ in 0..n {
                let id = r.u64()?;
                let rows = r.usize()?;
                blocks.insert(id, rows);
            }
            r.finish()?;
            let mut tenant = FakeTenant::new(estimate);
            tenant.blocks = blocks;
            tenant.next_id = next_id;
            Ok(tenant)
        }

        fn discretization_stamp(&self) -> u64 {
            // Changes on every append, so the BINSTEP record path and
            // its replay verification get exercised by ordinary use.
            self.next_id
        }
    }

    fn service(budget: Option<usize>) -> ClusterService<FakeTenant> {
        ClusterService::new(Arc::new(DatasetStore::new()), budget)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("p3c-service-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_service(dir: &Path, snapshot_every: u64) -> ClusterService<FakeTenant> {
        ClusterService::with_durability(Arc::new(DatasetStore::new()), None, dir, snapshot_every)
            .unwrap()
    }

    #[test]
    fn routes_operations_to_named_tenants() {
        let svc = service(None);
        svc.create("a", FakeTenant::new(10)).unwrap();
        svc.create("b", FakeTenant::new(10)).unwrap();
        assert_eq!(
            svc.create("a", FakeTenant::new(10)),
            Err(ServiceError::DatasetExists("a".into()))
        );
        let id = svc.append("a", 100).unwrap();
        svc.append("b", 7).unwrap();
        assert_eq!(*svc.recluster("a").unwrap(), 100);
        assert_eq!(*svc.recluster("b").unwrap(), 7);
        assert!(svc.retract("a", id).unwrap());
        assert!(!svc.retract("a", id).unwrap());
        assert_eq!(*svc.recluster("a").unwrap(), 0);
        assert_eq!(
            svc.append("c", 1),
            Err(ServiceError::UnknownDataset("c".into()))
        );
        let m = svc.metrics();
        assert_eq!((m.appends, m.retracts, m.reclusters), (2, 1, 3));
        assert_eq!(svc.names(), vec!["a".to_string(), "b".to_string()]);
        svc.drop_dataset("a").unwrap();
        assert_eq!(svc.names(), vec!["b".to_string()]);
    }

    #[test]
    fn last_model_pins_the_published_clustering() {
        let svc = service(None);
        svc.create("a", FakeTenant::new(10)).unwrap();
        assert_eq!(svc.last_model("a"), None, "nothing published yet");
        svc.append("a", 5).unwrap();
        let first = svc.recluster("a").unwrap();
        assert_eq!(svc.last_model("a"), Some(Arc::clone(&first)));
        // The pinned Arc survives later appends and re-clusters.
        svc.append("a", 7).unwrap();
        let pinned = svc.last_model("a").unwrap();
        let second = svc.recluster("a").unwrap();
        assert_eq!((*pinned, *second), (5, 12));
        assert_eq!(svc.last_model("a"), Some(second));
        svc.drop_dataset("a").unwrap();
        assert_eq!(svc.last_model("a"), None, "dropped tenants unpublish");
    }

    #[test]
    fn admission_fits_jobs_under_budget() {
        let adm = Admission::new(Some(100));
        adm.admit(60);
        assert!(!adm.would_wait(40), "fits exactly");
        assert!(adm.would_wait(41), "over budget must wait");
        adm.release(60);
        assert!(!adm.would_wait(41), "idle service admits anything");
    }

    #[test]
    fn oversized_job_admitted_when_idle() {
        let adm = Admission::new(Some(100));
        assert!(!adm.admit(1000), "idle: no wait even over budget");
        adm.release(1000);
    }

    #[test]
    fn blocked_job_admitted_only_after_release() {
        let adm = Arc::new(Admission::new(Some(100)));
        let order = Arc::new(Mutex::new(Vec::new()));
        adm.admit(80);
        order.lock().push("admit-1");
        let t = {
            let adm = Arc::clone(&adm);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let waited = adm.admit(80);
                order.lock().push("admit-2");
                adm.release(80);
                waited
            })
        };
        order.lock().push("release-1");
        adm.release(80);
        let waited = t.join().unwrap();
        let order = order.lock();
        let pos = |tag| order.iter().position(|&t| t == tag).unwrap();
        assert!(pos("release-1") < pos("admit-2"), "{order:?}");
        // The second job may or may not have observed the wait (it can
        // race ahead of `admit-1`'s release), but if it waited, the
        // ordering above proves the budget gated it.
        let _ = waited;
    }

    #[test]
    fn recluster_waits_are_counted_when_budget_contended() {
        // Genuine contention: the budget is pre-occupied by 80 bytes, so
        // the 80-byte recluster (budget 100) must block until release.
        let svc = Arc::new(service(Some(100)));
        let (probe_tx, probe_rx) = mpsc::channel();
        let mut tenant = FakeTenant::new(80);
        tenant.estimate_probe = Some(probe_tx);
        svc.create("big", tenant).unwrap();
        svc.append("big", 1).unwrap();
        svc.admission.admit(80);
        let t = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || *svc.recluster("big").unwrap())
        };
        // The worker has read its estimate and is now inside admit();
        // give it time to reach the wait before freeing the budget.
        probe_rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(100));
        svc.admission.release(80);
        assert_eq!(t.join().unwrap(), 1);
        assert!(
            svc.metrics().admission_waits >= 1,
            "blocked recluster must count its wait"
        );
        let state = svc.admission.state.lock();
        assert_eq!(
            (state.in_flight_bytes, state.in_flight_jobs),
            (0, 0),
            "admission fully released after the job"
        );
    }

    #[test]
    fn recluster_readmits_when_estimate_grows_after_admission() {
        // Regression for the admit-then-re-lock TOCTOU: the estimate is
        // 30 when first read, but by the time the tenant lock is
        // re-acquired the working set has grown to 80. The service must
        // re-admit at 80, not run an 80-byte job on a 30-byte ticket.
        let svc = Arc::new(service(Some(1000)));
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let mut tenant = FakeTenant::new(30);
        tenant.estimates = vec![30, 80];
        tenant.gate = Some(Gate {
            entered: entered_tx,
            release: Mutex::new(release_rx),
        });
        svc.create("grow", tenant).unwrap();
        svc.append("grow", 1).unwrap();
        let t = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || *svc.recluster("grow").unwrap())
        };
        // The job is now running inside recluster(), holding its
        // admission ticket; it must reflect the re-read 80, not the
        // stale 30.
        entered_rx.recv().unwrap();
        assert_eq!(svc.admission.state.lock().in_flight_bytes, 80);
        release_tx.send(()).unwrap();
        assert_eq!(t.join().unwrap(), 1);
        assert_eq!(svc.admission.state.lock().in_flight_bytes, 0);
    }

    #[test]
    fn durable_service_recovers_from_journal_alone() {
        let dir = tmpdir("journal-only");
        let expected = {
            let svc = durable_service(&dir, 0);
            svc.create("t", FakeTenant::new(10)).unwrap();
            svc.append("t", 5).unwrap();
            let id = svc.append("t", 7).unwrap();
            svc.append("t", 9).unwrap();
            svc.retract("t", id).unwrap();
            *svc.recluster("t").unwrap()
        };
        let svc = durable_service(&dir, 0);
        let report = svc.recover().unwrap();
        assert_eq!(report.tenants, 1);
        assert_eq!(report.snapshots_loaded, 0);
        // 1 create + 3 appends + 3 binsteps + 1 retract.
        assert_eq!(report.records_replayed, 8);
        assert_eq!(*svc.recluster("t").unwrap(), expected);
        // Ids keep counting where the pre-crash service left off.
        assert_eq!(svc.append("t", 1).unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_bounds_replay_and_preserves_state() {
        let dir = tmpdir("snapshot");
        let expected = {
            let svc = durable_service(&dir, 3);
            svc.create("t", FakeTenant::new(10)).unwrap();
            for rows in 1..=10 {
                svc.append("t", rows).unwrap();
            }
            *svc.recluster("t").unwrap()
        };
        let svc = durable_service(&dir, 3);
        let report = svc.recover().unwrap();
        assert_eq!((report.tenants, report.snapshots_loaded), (1, 1));
        assert!(
            report.records_replayed <= 3,
            "replay must be bounded by the snapshot interval, got {}",
            report.records_replayed
        );
        assert_eq!(*svc.recluster("t").unwrap(), expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_dataset_erases_durable_state() {
        let dir = tmpdir("drop");
        {
            let svc = durable_service(&dir, 0);
            svc.create("gone", FakeTenant::new(10)).unwrap();
            svc.append("gone", 5).unwrap();
            svc.create("kept", FakeTenant::new(10)).unwrap();
            svc.append("kept", 3).unwrap();
            svc.drop_dataset("gone").unwrap();
        }
        let svc = durable_service(&dir, 0);
        let report = svc.recover().unwrap();
        assert_eq!(report.tenants, 1);
        assert_eq!(svc.names(), vec!["kept".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
