//! The engine's concurrency kernels, extracted behind small testable
//! abstractions.
//!
//! Everything the map/reduce phases do concurrently funnels through the
//! four types in this module: ticket-based work claiming ([`WorkQueue`]),
//! exactly-once task commit ([`CommitBoard`]), split-ordered shuffle
//! hand-off ([`ShuffleBuckets`]), and user-counter aggregation
//! ([`CounterLedger`]). Keeping them here serves two purposes:
//!
//! * The **order-determinism argument** of the engine (DESIGN.md §5)
//!   reduces to properties of these types — claims are unique, commits
//!   are exactly-once, bucket drain order is split order regardless of
//!   commit order, counter totals are exact — instead of properties of
//!   the whole engine.
//! * Each property is **model-checked**: under `--cfg loom` the module
//!   swaps its primitives for the `p3c-loom` shim and the
//!   `loom_models` integration test explores every interleaving of the
//!   operations (`RUSTFLAGS="--cfg loom" cargo test -p p3c-mapreduce
//!   --test loom_models`).

#[cfg(loom)]
use p3c_loom::sync::{
    atomic::{AtomicBool, AtomicUsize, Ordering},
    Mutex,
};
#[cfg(not(loom))]
use parking_lot::Mutex;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use std::collections::BTreeMap;

/// Ticket-dispensing work queue: `claim` hands out `0..limit` with each
/// index claimed by exactly one caller.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    limit: usize,
}

impl WorkQueue {
    /// A queue over work items `0..limit`.
    pub fn new(limit: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            limit,
        }
    }

    /// Claims the next unclaimed item, or `None` once all are taken.
    ///
    /// Exactly-once hand-out needs only the atomicity of the
    /// read-modify-write — two claimants can never see the same ticket —
    /// so no ordering stronger than `Relaxed` is required: the claimed
    /// index is data the caller already owns, and the *results* of the
    /// work are handed off through [`ShuffleBuckets`]' mutex, which
    /// provides the synchronization.
    pub fn claim(&self) -> Option<usize> {
        // audit: relaxed-ok — ticket counter; uniqueness needs only RMW
        // atomicity, and result hand-off synchronizes via ShuffleBuckets.
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        (ticket < self.limit).then_some(ticket)
    }

    /// Number of work items this queue dispenses.
    pub fn limit(&self) -> usize {
        self.limit
    }
}

/// Exactly-once task-commit board: racing attempts of the same task call
/// [`CommitBoard::try_commit`], and precisely one wins (the engine's
/// speculative-execution commit protocol).
#[derive(Debug)]
pub struct CommitBoard {
    done: Vec<AtomicBool>,
    done_count: AtomicUsize,
}

impl CommitBoard {
    /// A board tracking `n` tasks, all initially uncommitted.
    pub fn new(n: usize) -> Self {
        Self {
            done: (0..n).map(|_| AtomicBool::new(false)).collect(),
            done_count: AtomicUsize::new(0),
        }
    }

    /// Claims the commit right for task `idx`; the first caller wins.
    /// `AcqRel` makes the winner's task output visible to whoever
    /// observes the flag (the speculative pass polls it to skip
    /// completed tasks).
    pub fn try_commit(&self, idx: usize) -> bool {
        let won = !self.done[idx].swap(true, Ordering::AcqRel);
        if won {
            self.done_count.fetch_add(1, Ordering::AcqRel);
        }
        won
    }

    /// Whether task `idx` has committed.
    pub fn is_done(&self, idx: usize) -> bool {
        self.done[idx].load(Ordering::Acquire)
    }

    /// Whether every task has committed.
    pub fn all_done(&self) -> bool {
        self.done_count.load(Ordering::Acquire) >= self.done.len()
    }

    /// Number of tasks tracked by this board.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether the board tracks zero tasks.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }
}

/// Split-ordered shuffle hand-off: one slot per map task, committed in
/// any order, drained in *split* order.
///
/// This is the engine's order-determinism keystone (DESIGN.md §5): the
/// sequence a reducer sees must not depend on which map task finished
/// first, so each task commits its output into its own slot and
/// [`ShuffleBuckets::take_ordered`] concatenates the slots by split
/// index.
#[derive(Debug)]
pub struct ShuffleBuckets<T> {
    slots: Mutex<Vec<Option<Vec<T>>>>,
}

impl<T> ShuffleBuckets<T> {
    /// Buckets for `num_slots` producers, all initially empty.
    pub fn new(num_slots: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(num_slots, || None);
        Self {
            slots: Mutex::new(slots),
        }
    }

    /// Commits `items` as the output of producer `slot`. Later commits
    /// to the same slot replace earlier ones (the exactly-once commit
    /// protocol in [`CommitBoard`] prevents that from happening in the
    /// engine).
    pub fn commit(&self, slot: usize, items: Vec<T>) {
        self.slots.lock()[slot] = Some(items);
    }

    /// Drains all buckets as per-slot vectors, in slot order;
    /// uncommitted slots come back empty. The distributed engine path
    /// uses this to keep each map task's contribution separate while
    /// preserving the same slot ordering [`ShuffleBuckets::take_ordered`]
    /// guarantees.
    pub fn take_slots(&self) -> Vec<Vec<T>> {
        let buckets = std::mem::take(&mut *self.slots.lock());
        buckets.into_iter().map(Option::unwrap_or_default).collect()
    }

    /// Drains all buckets, concatenated in slot order — independent of
    /// commit order. Empty and uncommitted slots contribute nothing.
    pub fn take_ordered(&self) -> Vec<T> {
        let buckets = std::mem::take(&mut *self.slots.lock());
        let total: usize = buckets.iter().map(|b| b.as_ref().map_or(0, Vec::len)).sum();
        let mut out = Vec::with_capacity(total);
        for bucket in buckets.into_iter().flatten() {
            out.extend(bucket);
        }
        out
    }
}

/// Per-block partial-result board for the worker pool: one slot per
/// block, committed in any order by whichever worker claimed the block,
/// merged by the caller in **fixed block-index order**.
///
/// This is the kernel behind [`crate::pool::parallel_for_blocks`] and
/// the engine's reduce phase: combined with [`WorkQueue`]'s unique
/// claims it guarantees that every block's partial is produced exactly
/// once and that the merge order — and therefore any f64 reduction over
/// the partials — is independent of scheduling (DESIGN.md §11).
#[derive(Debug)]
pub struct BlockPartials<T> {
    slots: Mutex<Vec<Option<T>>>,
}

impl<T> BlockPartials<T> {
    /// A board with `num_blocks` empty slots.
    pub fn new(num_blocks: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(num_blocks, || None);
        Self {
            slots: Mutex::new(slots),
        }
    }

    /// Commits the partial of `block`. Each block must be committed at
    /// most once ([`WorkQueue`] hands every index to exactly one
    /// worker); a double commit panics.
    pub fn commit(&self, block: usize, value: T) {
        let mut slots = self.slots.lock();
        assert!(
            slots[block].is_none(),
            "block {block} committed twice — claims must be unique"
        );
        slots[block] = Some(value);
    }

    /// Consumes the board, returning the partials in block-index order.
    /// Panics if any block never committed.
    pub fn into_ordered(self) -> Vec<T> {
        let slots = self.slots.into_inner();
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("block {i} never committed")))
            .collect()
    }
}

/// Aggregates user counters from concurrently finishing tasks; totals
/// are exact because every merge happens under one lock, and iteration
/// order is stable because the ledger is a `BTreeMap`.
#[derive(Debug)]
pub struct CounterLedger {
    counters: Mutex<BTreeMap<String, u64>>,
}

impl Default for CounterLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
        }
    }

    /// Adds a batch of counter deltas atomically.
    pub fn merge<'a, I>(&self, deltas: I)
    where
        I: IntoIterator<Item = (&'a str, u64)>,
    {
        let mut iter = deltas.into_iter().peekable();
        if iter.peek().is_none() {
            return;
        }
        let mut counters = self.counters.lock();
        for (name, delta) in iter {
            *counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Snapshot of all counter totals.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.counters.lock().clone()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn work_queue_dispenses_each_index_once() {
        let q = WorkQueue::new(3);
        assert_eq!(q.claim(), Some(0));
        assert_eq!(q.claim(), Some(1));
        assert_eq!(q.claim(), Some(2));
        assert_eq!(q.claim(), None);
        assert_eq!(q.claim(), None);
        assert_eq!(q.limit(), 3);
    }

    #[test]
    fn commit_board_first_attempt_wins() {
        let b = CommitBoard::new(2);
        assert!(!b.is_done(0));
        assert!(b.try_commit(0));
        assert!(!b.try_commit(0));
        assert!(b.is_done(0));
        assert!(!b.all_done());
        assert!(b.try_commit(1));
        assert!(b.all_done());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn shuffle_buckets_drain_in_slot_order() {
        let buckets = ShuffleBuckets::new(3);
        buckets.commit(2, vec![30]);
        buckets.commit(0, vec![10, 11]);
        // Slot 1 never commits.
        assert_eq!(buckets.take_ordered(), vec![10, 11, 30]);
        // Drained: a second take is empty.
        assert_eq!(buckets.take_ordered(), Vec::<i32>::new());
    }

    #[test]
    fn shuffle_buckets_take_slots_preserves_slot_identity() {
        let buckets = ShuffleBuckets::new(3);
        buckets.commit(2, vec![30]);
        buckets.commit(0, vec![10, 11]);
        // Slot 1 never commits — it drains as an empty (not absent) slot.
        assert_eq!(buckets.take_slots(), vec![vec![10, 11], vec![], vec![30]]);
        // Drained: a second take yields all-empty slots.
        assert_eq!(
            buckets.take_slots(),
            Vec::<Vec<i32>>::new(),
            "mem::take leaves no slots behind"
        );
    }

    #[test]
    fn block_partials_merge_in_block_order() {
        let partials = BlockPartials::new(3);
        partials.commit(2, "c");
        partials.commit(0, "a");
        partials.commit(1, "b");
        assert_eq!(partials.into_ordered(), vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "committed twice")]
    fn block_partials_reject_double_commit() {
        let partials = BlockPartials::new(2);
        partials.commit(0, 1);
        partials.commit(0, 2);
    }

    #[test]
    #[should_panic(expected = "never committed")]
    fn block_partials_require_every_block() {
        let partials = BlockPartials::new(2);
        partials.commit(0, 1);
        let _ = partials.into_ordered();
    }

    #[test]
    fn counter_ledger_totals_exact() {
        let ledger = CounterLedger::new();
        ledger.merge([("a", 1), ("b", 2)]);
        ledger.merge([("a", 3)]);
        ledger.merge([]);
        let snap = ledger.snapshot();
        assert_eq!(snap["a"], 4);
        assert_eq!(snap["b"], 2);
        assert_eq!(snap.len(), 2);
    }
}
