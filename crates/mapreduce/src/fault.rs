//! Deterministic fault injection for map tasks.
//!
//! MapReduce's defining operational property is tolerance to task failure:
//! a failed task is simply re-executed. The engine reproduces this with a
//! seedable, *deterministic* failure oracle so tests can assert both that
//! failures happened and that results are unaffected.

use serde::{Deserialize, Serialize};

/// A plan describing which task attempts fail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability in `[0,1]` that any given task *attempt* fails.
    pub failure_probability: f64,
    /// Seed making the oracle deterministic.
    pub seed: u64,
}

impl FaultPlan {
    /// Plan failing each attempt with `failure_probability`,
    /// deterministically derived from `seed`.
    pub fn new(failure_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&failure_probability),
            "failure probability must be in [0,1]"
        );
        Self {
            failure_probability,
            seed,
        }
    }

    /// Whether the given attempt of the given task in the given job fails.
    ///
    /// Pure function of `(seed, job, task, attempt)` — re-running the same
    /// pipeline yields the identical failure pattern.
    pub fn should_fail(&self, job_name: &str, task: usize, attempt: usize) -> bool {
        if self.failure_probability <= 0.0 {
            return false;
        }
        if self.failure_probability >= 1.0 {
            return true;
        }
        let h = splitmix_hash(self.seed, job_name, task, attempt);
        // Map the hash to [0,1) and compare.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.failure_probability
    }
}

/// A plan describing which map tasks run on "slow nodes".
///
/// Companion to [`FaultPlan`]: instead of failing, a straggling task's
/// *primary* attempt is delayed by `delay_ms` (in small cancellable
/// increments, so a speculative backup committing the task releases the
/// straggler immediately — Hadoop kills the slower attempt the same way).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StragglerPlan {
    /// Probability in `[0,1]` that a task's primary attempt straggles.
    pub probability: f64,
    /// Added latency of a straggling attempt, in milliseconds.
    pub delay_ms: u64,
    /// Seed making the oracle deterministic.
    pub seed: u64,
}

impl StragglerPlan {
    /// Plan delaying each task by `delay_ms` with `probability`,
    /// deterministically derived from `seed`.
    pub fn new(probability: f64, delay_ms: u64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "straggle probability must be in [0,1]"
        );
        Self {
            probability,
            delay_ms,
            seed,
        }
    }

    /// Whether the primary attempt of the given task straggles.
    pub fn should_straggle(&self, job_name: &str, task: usize) -> bool {
        if self.probability <= 0.0 {
            return false;
        }
        if self.probability >= 1.0 {
            return true;
        }
        let h = splitmix_hash(self.seed ^ 0x5747_ca61, job_name, task, 0);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.probability
    }
}

/// SplitMix64-style avalanche over the task coordinates.
fn splitmix_hash(seed: u64, job_name: &str, task: usize, attempt: usize) -> u64 {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &b in job_name.as_bytes() {
        x = mix(x ^ b as u64);
    }
    x = mix(x ^ task as u64);
    x = mix(x ^ (attempt as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = FaultPlan::new(0.5, 42);
        for task in 0..20 {
            for attempt in 0..3 {
                assert_eq!(
                    p.should_fail("job", task, attempt),
                    p.should_fail("job", task, attempt)
                );
            }
        }
    }

    #[test]
    fn zero_and_one_probability() {
        let never = FaultPlan::new(0.0, 1);
        let always = FaultPlan::new(1.0, 1);
        for t in 0..10 {
            assert!(!never.should_fail("j", t, 0));
            assert!(always.should_fail("j", t, 0));
        }
    }

    #[test]
    fn rate_is_close_to_probability() {
        let p = FaultPlan::new(0.3, 7);
        let fails = (0..10_000).filter(|&t| p.should_fail("rate", t, 0)).count();
        let rate = fails as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn attempts_fail_independently() {
        // With p = 0.5 a task should not fail on *every* attempt forever;
        // verify that some task failing at attempt 0 succeeds by attempt 5.
        let p = FaultPlan::new(0.5, 99);
        let mut saw_recovery = false;
        for t in 0..100 {
            if p.should_fail("j", t, 0) && (1..6).any(|a| !p.should_fail("j", t, a)) {
                saw_recovery = true;
                break;
            }
        }
        assert!(saw_recovery);
    }

    #[test]
    fn different_jobs_have_different_patterns() {
        let p = FaultPlan::new(0.5, 3);
        let a: Vec<bool> = (0..64).map(|t| p.should_fail("job-a", t, 0)).collect();
        let b: Vec<bool> = (0..64).map(|t| p.should_fail("job-b", t, 0)).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn invalid_probability_rejected() {
        let _ = FaultPlan::new(1.5, 0);
    }

    #[test]
    fn straggler_plan_deterministic_and_rate_bound() {
        let p = StragglerPlan::new(0.25, 100, 5);
        for t in 0..20 {
            assert_eq!(p.should_straggle("j", t), p.should_straggle("j", t));
        }
        let rate = (0..10_000)
            .filter(|&t| p.should_straggle("rate", t))
            .count() as f64
            / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed {rate}");
        assert!(!StragglerPlan::new(0.0, 100, 1).should_straggle("j", 0));
        assert!(StragglerPlan::new(1.0, 100, 1).should_straggle("j", 0));
    }
}
