//! An in-process MapReduce execution engine — the Hadoop stand-in for the
//! P3C+-MR reproduction.
//!
//! The paper implements P3C+ as a sequence of Hadoop jobs. This crate
//! recreates the programming model and the observable behaviour of such a
//! cluster inside one process:
//!
//! * **Programming model** — [`Mapper`], [`Reducer`] and [`Combiner`]
//!   traits with an [`Emitter`] context ([`api`]); mappers may override
//!   [`Mapper::map_split`] to use the whole input split (the paper's MVB
//!   mapper does exactly that in its cleanup phase).
//! * **Execution** — [`Engine`] chunks input into splits, runs map tasks on
//!   a thread pool, hash-partitions and sort-merges the intermediate pairs
//!   into `num_reducers` groups and runs the reduce tasks in parallel
//!   ([`engine`]).
//! * **Fault tolerance** — deterministic, seedable fault injection with
//!   task re-execution ([`fault`]), mirroring Hadoop's retry semantics.
//! * **Distributed cache** — a broadcast-cost-accounted side channel for
//!   shipping candidate sets and RSSC bitmaps to every mapper ([`cache`]).
//! * **Metrics** — per-job record/byte counters and wall-clock phases
//!   ([`metrics`]); these drive the runtime/I/O figures of the evaluation.
//! * **Block storage** — a tiny "HDFS-lite" ([`blockstore`]) used by the
//!   examples to stage datasets as replicated blocks.
//!
//! # Example
//!
//! ```
//! use p3c_mapreduce::{Engine, MrConfig, Mapper, Reducer, Emitter};
//!
//! /// Classic word-length count: length -> how many words.
//! struct LenMapper;
//! impl Mapper<&'static str, usize, u64> for LenMapper {
//!     fn map(&self, word: &&'static str, out: &mut Emitter<usize, u64>) {
//!         out.emit(word.len(), 1);
//!     }
//! }
//! struct SumReducer;
//! impl Reducer<usize, u64, (usize, u64)> for SumReducer {
//!     fn reduce(&self, key: &usize, values: Vec<u64>, out: &mut Vec<(usize, u64)>) {
//!         out.push((*key, values.into_iter().sum()));
//!     }
//! }
//!
//! let engine = Engine::new(MrConfig::default());
//! let words = ["map", "reduce", "shuffle", "ox", "fox"];
//! let result = engine.run("wordlen", &words, &LenMapper, &SumReducer).unwrap();
//! let mut pairs = result.output;
//! pairs.sort();
//! assert_eq!(pairs, vec![(2, 1), (3, 2), (6, 1), (7, 1)]);
//! ```

pub mod api;
pub mod blockstore;
pub mod cache;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod weight;

pub use api::{Combiner, Emitter, Mapper, Reducer};
pub use blockstore::BlockStore;
pub use cache::DistributedCache;
pub use engine::{Engine, JobOutput, MrConfig, MrError};
pub use fault::FaultPlan;
pub use metrics::{ClusterMetrics, JobMetrics};
pub use weight::Weighable;
