//! An in-process MapReduce execution engine — the Hadoop stand-in for the
//! P3C+-MR reproduction.
//!
//! The paper implements P3C+ as a sequence of Hadoop jobs. This crate
//! recreates the programming model and the observable behaviour of such a
//! cluster inside one process:
//!
//! * **Programming model** — [`Mapper`], [`Reducer`] and [`Combiner`]
//!   traits with an [`Emitter`] context ([`api`]); mappers may override
//!   [`Mapper::map_split`] to use the whole input split (the paper's MVB
//!   mapper does exactly that in its cleanup phase).
//! * **Execution** — [`Engine`] chunks input into splits, runs map tasks on
//!   a thread pool, hash-partitions and sort-merges the intermediate pairs
//!   into `num_reducers` groups and runs the reduce tasks in parallel
//!   ([`engine`]).
//! * **Fault tolerance** — deterministic, seedable fault injection with
//!   task re-execution ([`fault`]), mirroring Hadoop's retry semantics.
//! * **Distributed cache** — a broadcast-cost-accounted side channel for
//!   shipping candidate sets and RSSC bitmaps to every mapper ([`cache`]).
//! * **Metrics** — per-job record/byte counters and wall-clock phases
//!   ([`metrics`]); these drive the runtime/I/O figures of the evaluation.
//! * **Block storage** — a tiny "HDFS-lite" ([`blockstore`]) used by the
//!   examples to stage datasets as replicated blocks.
//! * **DAG scheduling** — a [`JobGraph`] of MR jobs over named, cached
//!   datasets ([`dag`], [`dataset`]): ready jobs run concurrently, shared
//!   inputs load once, and lineage re-executes only lost ancestors after
//!   a failure.
//! * **Distributed backends** — a [`Backend`] seam over the shuffle data
//!   plane ([`distrib`]): the in-process engine, an in-process shuffle
//!   service, and a multi-process backend whose spawned workers serve
//!   partitions over a checksummed TCP frame protocol with worker
//!   respawn and map re-execution on loss.
//!
//! # Example
//!
//! A two-node job graph: a map-reduce job counts word lengths into a
//! `counts` dataset, and a downstream map-only job derives the most
//! common length from it. The scheduler runs `count` first — `report`
//! declares `counts` as an input — and materializes both datasets in the
//! [`DatasetStore`].
//!
//! ```
//! use p3c_mapreduce::{
//!     DagScheduler, DatasetHandle, DatasetStore, Emitter, Engine, JobGraph, JobKind, JobNode,
//!     Mapper, MrConfig, NodeCtx, Reducer,
//! };
//!
//! /// Classic word-length count: length -> how many words.
//! struct LenMapper;
//! impl Mapper<String, usize, u64> for LenMapper {
//!     fn map(&self, word: &String, out: &mut Emitter<usize, u64>) {
//!         out.emit(word.len(), 1);
//!     }
//! }
//! struct SumReducer;
//! impl Reducer<usize, u64, (usize, u64)> for SumReducer {
//!     fn reduce(&self, key: &usize, values: Vec<u64>, out: &mut Vec<(usize, u64)>) {
//!         out.push((*key, values.into_iter().sum()));
//!     }
//! }
//!
//! let engine = Engine::new(MrConfig::default());
//! let store = DatasetStore::new();
//!
//! // Input dataset, loaded into the store once for the whole pipeline.
//! let words: DatasetHandle<Vec<String>> = DatasetHandle::new("words");
//! let counts: DatasetHandle<Vec<(usize, u64)>> = DatasetHandle::new("counts");
//! let top: DatasetHandle<usize> = DatasetHandle::new("top-length");
//! let data: Vec<String> =
//!     ["map", "reduce", "shuffle", "ox", "fox"].iter().map(|s| s.to_string()).collect();
//! store.put(&words, data, 64);
//!
//! let mut graph = JobGraph::new("wordlen-pipeline");
//! graph.add(
//!     JobNode::new("count", JobKind::MapReduce, {
//!         let (words, counts) = (words.clone(), counts.clone());
//!         move |ctx: &NodeCtx| {
//!             let input = ctx.fetch(&words)?;
//!             let res = ctx.engine.run("wordlen", &input, &LenMapper, &SumReducer)?;
//!             ctx.put(&counts, res.output, 16);
//!             Ok(())
//!         }
//!     })
//!     .input(&words)
//!     .output(&counts),
//! );
//! graph.add(
//!     JobNode::new("report", JobKind::MapOnly, {
//!         let (counts, top) = (counts.clone(), top.clone());
//!         move |ctx: &NodeCtx| {
//!             let pairs = ctx.fetch(&counts)?;
//!             let best = pairs.iter().max_by_key(|&&(len, n)| (n, len)).map(|p| p.0);
//!             ctx.put(&top, best.unwrap_or(0), 8);
//!             Ok(())
//!         }
//!     })
//!     .input(&counts)
//!     .output(&top),
//! );
//!
//! let report = DagScheduler::new(&engine).run(&graph, &store).unwrap();
//! assert_eq!(*store.get(&top).unwrap(), 3); // two words of length 3
//! assert_eq!(report.metrics.total_executions, 2);
//! ```
#![warn(missing_docs)]

pub mod api;
pub mod blockstore;
pub mod cache;
pub mod dag;
pub mod dataset;
pub mod distrib;
pub mod engine;
pub mod fault;
pub mod kernel;
pub mod metrics;
pub mod pool;
pub mod service;
pub mod sync;
pub mod weight;

pub use api::{Combiner, Emitter, Mapper, Reducer};
pub use blockstore::BlockStore;
pub use cache::DistributedCache;
pub use dag::{
    DagConfig, DagError, DagReport, DagScheduler, JobGraph, JobKind, JobNode, NodeCtx,
    SchedulerChoice,
};
pub use dataset::{
    rows_codec, take_dataset, DatasetCodec, DatasetError, DatasetHandle, DatasetStore,
    DatasetStoreStats, SegmentedCodec,
};
pub use distrib::{
    Backend, BackendChoice, BackendError, LocalBackend, MapOutputTracker, ProcessBackend,
    ShuffleManager, Wire,
};
pub use engine::{stable_partition, Engine, JobOutput, MrConfig, MrError};
pub use fault::FaultPlan;
pub use metrics::{ClusterMetrics, DagMetrics, DagNodeMetrics, JobMetrics};
pub use pool::{parallel_for_blocks, parallel_for_blocks_with, resolve_threads, run_workers};
pub use service::{ClusterService, ServiceError, ServiceMetrics, Tenant};
pub use weight::Weighable;
