//! Distributed cache: broadcast side-data with cost accounting.
//!
//! The paper ships candidate signature sets and RSSC bit masks to every
//! mapper "via the distributed cache" (Section 5.3). In-process, sharing
//! is free — but its *cost on a real cluster* is not, and the evaluation
//! depends on it. [`DistributedCache`] wraps a shared value together with
//! its estimated broadcast size; the engine charges
//! `bytes × number_of_map_tasks` to the job when the cache is attached.

use crate::weight::Weighable;
use std::sync::Arc;

/// A broadcast value with an associated per-recipient byte cost.
#[derive(Debug, Clone)]
pub struct DistributedCache<T> {
    value: Arc<T>,
    bytes: usize,
}

impl<T> DistributedCache<T> {
    /// Wraps a value whose broadcast size is estimated by [`Weighable`].
    pub fn new(value: T) -> Self
    where
        T: Weighable,
    {
        let bytes = value.weight();
        Self {
            value: Arc::new(value),
            bytes,
        }
    }

    /// Wraps a value with an explicitly provided broadcast size
    /// (for types without a [`Weighable`] impl).
    pub fn with_size(value: T, bytes: usize) -> Self {
        Self {
            value: Arc::new(value),
            bytes,
        }
    }

    /// Shared access to the cached value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Estimated serialized size of one broadcast copy.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// A clone of the inner `Arc` (to move into mapper structs).
    pub fn share(&self) -> Arc<T> {
        Arc::clone(&self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighable_size_is_used() {
        let c = DistributedCache::new(vec![0.0f64; 10]);
        assert_eq!(c.byte_size(), 4 + 80);
        assert_eq!(c.get().len(), 10);
    }

    #[test]
    fn explicit_size() {
        struct Opaque;
        let c = DistributedCache::with_size(Opaque, 1234);
        assert_eq!(c.byte_size(), 1234);
    }

    #[test]
    fn share_is_same_allocation() {
        let c = DistributedCache::new(vec![1u8, 2, 3]);
        let a = c.share();
        let b = c.share();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
