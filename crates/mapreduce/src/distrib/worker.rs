//! The worker subprocess: a shuffle node serving the frame protocol.
//!
//! `p3c worker --connect <addr> --id <n>` lands here. The worker dials
//! the master, introduces itself with `HELLO`, and then serves frames
//! off its single duplex connection until `SHUTDOWN`, EOF, or an
//! injected `KILL`. All state is one [`ShuffleManager`] over a private
//! in-memory [`BlockStore`](crate::blockstore::BlockStore) — shared
//! nothing with the master or its sibling workers; every byte that
//! reaches a reducer travelled through the socket.

use super::shuffle::ShuffleManager;
use super::wire::{
    fnv1a64, read_frame, write_frame, Wire, WireReader, ERR_CORRUPT, ERR_MALFORMED, ERR_NOT_FOUND,
    OP_DELETE_SID, OP_ERR, OP_FETCH, OP_FETCH_OK, OP_HELLO, OP_KILL, OP_PING, OP_PONG, OP_SHUTDOWN,
    OP_STORE, OP_STORE_OK,
};
use std::io::{self, Write as _};
use std::net::TcpStream;

/// Exit code of a worker felled by an injected `KILL` frame.
pub const KILLED_EXIT_CODE: i32 = 17;

/// Runs the worker loop: connect, `HELLO`, serve until told to stop.
///
/// Returns when the master sends `SHUTDOWN` or closes the connection;
/// propagates genuine socket errors. An injected `KILL` frame exits the
/// process immediately with [`KILLED_EXIT_CODE`] — the simulated node
/// crash takes all stored partitions with it.
pub fn run_worker(connect: &str, id: u64) -> io::Result<()> {
    let mut stream = TcpStream::connect(connect)?;
    stream.set_nodelay(true)?;
    let mut hello = Vec::with_capacity(8);
    id.encode(&mut hello);
    write_frame(&mut stream, OP_HELLO, &hello)?;

    let manager = ShuffleManager::new(crate::blockstore::DEFAULT_BLOCK_SIZE);
    loop {
        let (opcode, payload) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            // Master went away: a worker without a master has no
            // purpose; exit cleanly.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match opcode {
            OP_STORE => {
                let reply = handle_store(&manager, &payload);
                send_reply(&mut stream, reply)?;
            }
            OP_FETCH => {
                let reply = handle_fetch(&manager, &payload);
                send_reply(&mut stream, reply)?;
            }
            OP_DELETE_SID => {
                let mut r = WireReader::new(&payload);
                if let Ok(sid) = r.u64() {
                    manager.delete_shuffle(sid);
                }
                write_frame(&mut stream, OP_PONG, &[])?;
            }
            OP_PING => write_frame(&mut stream, OP_PONG, &[])?,
            OP_SHUTDOWN => return Ok(()),
            OP_KILL => {
                // Injected crash: drop everything and die without a
                // goodbye, like a powered-off node.
                drop(manager);
                let _ = io::stdout().flush();
                std::process::exit(KILLED_EXIT_CODE);
            }
            other => {
                send_reply(
                    &mut stream,
                    Reply::Err(ERR_MALFORMED, format!("unknown opcode {other}")),
                )?;
            }
        }
    }
}

enum Reply {
    Ok(u8, Vec<u8>),
    Err(u64, String),
}

fn send_reply(stream: &mut TcpStream, reply: Reply) -> io::Result<()> {
    match reply {
        Reply::Ok(opcode, payload) => write_frame(stream, opcode, &payload),
        Reply::Err(code, msg) => {
            let mut payload = Vec::with_capacity(12 + msg.len());
            code.encode(&mut payload);
            msg.encode(&mut payload);
            write_frame(stream, OP_ERR, &payload)
        }
    }
}

/// `STORE {sid, map, reduce, checksum, data…}` → `STORE_OK` | `ERR`.
/// The checksum is verified *before* storing, so a partition mangled in
/// transit is rejected at the door.
fn handle_store(manager: &ShuffleManager, payload: &[u8]) -> Reply {
    let mut r = WireReader::new(payload);
    let header = (|| -> Result<(u64, u64, u64, u64), super::wire::WireError> {
        Ok((r.u64()?, r.u64()?, r.u64()?, r.u64()?))
    })();
    let Ok((sid, map_id, reduce_id, checksum)) = header else {
        return Reply::Err(ERR_MALFORMED, "short STORE header".to_string());
    };
    let data = &payload[32..];
    if fnv1a64(data) != checksum {
        return Reply::Err(
            ERR_CORRUPT,
            format!("partition ({sid},{map_id},{reduce_id}) checksum mismatch on store"),
        );
    }
    manager.store_partition(sid, map_id as usize, reduce_id as usize, data);
    Reply::Ok(OP_STORE_OK, Vec::new())
}

/// `FETCH {sid, map, reduce}` → `FETCH_OK {checksum, data…}` | `ERR`.
fn handle_fetch(manager: &ShuffleManager, payload: &[u8]) -> Reply {
    let mut r = WireReader::new(payload);
    let header = (|| -> Result<(u64, u64, u64), super::wire::WireError> {
        Ok((r.u64()?, r.u64()?, r.u64()?))
    })();
    let Ok((sid, map_id, reduce_id)) = header else {
        return Reply::Err(ERR_MALFORMED, "short FETCH header".to_string());
    };
    // The reply carries the data's checksum, recomputed from what is
    // actually stored; the master compares it against its tracker
    // record, so rot in the worker's store surfaces as corruption.
    let key = super::shuffle::shuffle_key(sid, map_id as usize, reduce_id as usize);
    let data = match manager.store().read(&key) {
        Some(data) => data,
        None => return Reply::Err(ERR_NOT_FOUND, format!("no partition '{key}'")),
    };
    let mut body = Vec::with_capacity(8 + data.len());
    fnv1a64(&data).encode(&mut body);
    body.extend_from_slice(&data);
    Reply::Ok(OP_FETCH_OK, body)
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn store_then_fetch_roundtrip() {
        let manager = ShuffleManager::new(64);
        let data = b"the partition";
        let mut payload = Vec::new();
        for v in [3u64, 1, 2, fnv1a64(data)] {
            v.encode(&mut payload);
        }
        payload.extend_from_slice(data);
        assert!(matches!(
            handle_store(&manager, &payload),
            Reply::Ok(op, _) if op == OP_STORE_OK
        ));

        let mut fetch = Vec::new();
        for v in [3u64, 1, 2] {
            v.encode(&mut fetch);
        }
        match handle_fetch(&manager, &fetch) {
            Reply::Ok(op, body) => {
                assert_eq!(op, OP_FETCH_OK);
                assert_eq!(&body[8..], data);
                assert_eq!(
                    u64::from_le_bytes(body[..8].try_into().unwrap()),
                    fnv1a64(data)
                );
            }
            Reply::Err(code, msg) => panic!("fetch failed: {code} {msg}"),
        }
    }

    #[test]
    fn corrupt_store_rejected_at_the_door() {
        let manager = ShuffleManager::new(64);
        let mut payload = Vec::new();
        for v in [1u64, 0, 0, 0xdead_beef] {
            v.encode(&mut payload);
        }
        payload.extend_from_slice(b"data");
        assert!(matches!(
            handle_store(&manager, &payload),
            Reply::Err(code, _) if code == ERR_CORRUPT
        ));
    }

    #[test]
    fn missing_fetch_and_short_headers_are_errors() {
        let manager = ShuffleManager::new(64);
        let mut fetch = Vec::new();
        for v in [9u64, 0, 0] {
            v.encode(&mut fetch);
        }
        assert!(matches!(
            handle_fetch(&manager, &fetch),
            Reply::Err(code, _) if code == ERR_NOT_FOUND
        ));
        assert!(matches!(
            handle_store(&manager, &[1, 2, 3]),
            Reply::Err(code, _) if code == ERR_MALFORMED
        ));
        assert!(matches!(
            handle_fetch(&manager, &[]),
            Reply::Err(code, _) if code == ERR_MALFORMED
        ));
    }
}
