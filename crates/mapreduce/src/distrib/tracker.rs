//! Master-side registry of shuffle partition locations.
//!
//! Every map task that finishes registers, per reducer, where its
//! partition bytes live — which worker holds them, how long they are,
//! and their FNV-1a checksum. Reducers consult the tracker before each
//! fetch; when a worker dies, [`MapOutputTracker::invalidate_worker`]
//! removes every entry it held, so the next lookup reports the map
//! output as lost and the engine re-executes that map task (Hadoop's
//! "map output lost, re-running map" path; DESIGN.md §12).
//!
//! Like the kernels in [`crate::kernel`], the tracker swaps its
//! primitives for the `p3c-loom` shims under `--cfg loom`; the
//! `loom_models` integration test explores register/lookup/invalidate
//! interleavings exhaustively.

#[cfg(loom)]
use p3c_loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::sync::{rank, RankedMutex};
use std::collections::BTreeMap;

/// Where one `(shuffle_id, map_id, reduce_id)` partition lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLocation {
    /// Index of the worker holding the bytes.
    pub worker: usize,
    /// Size of the partition in bytes.
    pub len: u64,
    /// FNV-1a checksum of the partition bytes.
    pub checksum: u64,
}

/// Registry mapping `(shuffle_id, map_id, reduce_id)` to a
/// [`BlockLocation`]. Keyed by a `BTreeMap` so diagnostic listings are
/// deterministically ordered.
#[derive(Debug)]
pub struct MapOutputTracker {
    entries: RankedMutex<BTreeMap<(u64, usize, usize), BlockLocation>>,
    /// Bumped on every invalidation; a fetch that spans a worker death
    /// can compare epochs to learn that its lookup is stale.
    epoch: AtomicUsize,
}

impl Default for MapOutputTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl MapOutputTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self {
            entries: RankedMutex::new(rank::TRACKER_ENTRIES, "tracker.entries", BTreeMap::new()),
            epoch: AtomicUsize::new(0),
        }
    }

    /// Records where a partition lives, replacing any previous entry
    /// (re-executed map tasks overwrite their lost registrations).
    pub fn register(&self, shuffle_id: u64, map_id: usize, reduce_id: usize, loc: BlockLocation) {
        self.entries
            .lock()
            .insert((shuffle_id, map_id, reduce_id), loc);
    }

    /// Looks up a partition's location; `None` means the map output is
    /// lost (never registered, or invalidated by a worker death).
    pub fn lookup(
        &self,
        shuffle_id: u64,
        map_id: usize,
        reduce_id: usize,
    ) -> Option<BlockLocation> {
        self.entries
            .lock()
            .get(&(shuffle_id, map_id, reduce_id))
            .copied()
    }

    /// Removes every entry held by `worker` (it died) and bumps the
    /// epoch; returns how many partitions were lost.
    pub fn invalidate_worker(&self, worker: usize) -> usize {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|_, loc| loc.worker != worker);
        let lost = before - entries.len();
        self.epoch.fetch_add(1, Ordering::AcqRel);
        lost
    }

    /// Drops every entry of one shuffle id (stage cleanup); returns how
    /// many were removed.
    pub fn unregister_shuffle(&self, shuffle_id: u64) -> usize {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|&(sid, _, _), _| sid != shuffle_id);
        before - entries.len()
    }

    /// Current invalidation epoch.
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of registered partitions.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the tracker holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn loc(worker: usize) -> BlockLocation {
        BlockLocation {
            worker,
            len: 10,
            checksum: 0xabc,
        }
    }

    #[test]
    fn register_lookup_roundtrip() {
        let t = MapOutputTracker::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(1, 0, 0), None);
        t.register(1, 0, 0, loc(2));
        assert_eq!(t.lookup(1, 0, 0), Some(loc(2)));
        assert_eq!(t.len(), 1);
        // Re-registration replaces.
        t.register(1, 0, 0, loc(3));
        assert_eq!(t.lookup(1, 0, 0), Some(loc(3)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn invalidate_worker_drops_only_its_entries() {
        let t = MapOutputTracker::new();
        t.register(1, 0, 0, loc(0));
        t.register(1, 1, 0, loc(1));
        t.register(2, 0, 0, loc(0));
        let e0 = t.epoch();
        assert_eq!(t.invalidate_worker(0), 2);
        assert_eq!(t.epoch(), e0 + 1);
        assert_eq!(t.lookup(1, 0, 0), None);
        assert_eq!(t.lookup(2, 0, 0), None);
        assert_eq!(t.lookup(1, 1, 0), Some(loc(1)));
    }

    #[test]
    fn unregister_shuffle_scopes_to_sid() {
        let t = MapOutputTracker::new();
        t.register(7, 0, 0, loc(0));
        t.register(7, 0, 1, loc(1));
        t.register(8, 0, 0, loc(0));
        assert_eq!(t.unregister_shuffle(7), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(8, 0, 0), Some(loc(0)));
        assert_eq!(t.unregister_shuffle(7), 0);
    }
}
