//! The [`Backend`] trait: where shuffle bytes live between map and
//! reduce.
//!
//! The engine's task *logic* (mappers, reducers, combiners) is made of
//! Rust closures and trait objects, which cannot cross a process
//! boundary; what genuinely moves between machines in a shared-nothing
//! MapReduce is the **shuffle data plane** — the encoded partition
//! bytes. The backend abstraction cuts exactly there, in the spirit of
//! Spark's shuffle service: the engine partitions, encodes
//! ([`crate::distrib::Wire`]) and *submits* each map task's output, and
//! reducers *fetch* their partitions back, in map order, before the
//! sort-merge. Where those bytes sit in between — process memory, an
//! in-process block store, or worker subprocesses reached over TCP —
//! is the backend's business (DESIGN.md §12).
//!
//! Because the engine encodes once and fetches in deterministic map
//! order, and the codec round-trips exactly, the reduce input — and
//! therefore the final output — is byte-identical across backends and
//! worker counts.

use super::shuffle::{ShuffleError, ShuffleManager};
use super::tracker::{BlockLocation, MapOutputTracker};
use crate::fault::FaultPlan;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Identity and shape of one shuffle stage (one map-reduce job).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpec {
    /// Engine-unique shuffle id.
    pub shuffle_id: u64,
    /// The job name, for diagnostics and fault plans.
    pub job: String,
    /// Number of map tasks feeding the shuffle.
    pub num_maps: usize,
    /// Number of reduce partitions.
    pub num_reducers: usize,
}

/// One map task's encoded shuffle output: one byte blob per reducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOutput {
    /// The producing map task (split index).
    pub map_id: usize,
    /// `partitions[r]` is the encoded partition destined for reducer `r`.
    pub partitions: Vec<Vec<u8>>,
}

/// Backend failures. `Lost` is the retryable one: the engine answers it
/// by re-executing the map task and restoring its output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// A map task's output is gone (worker death); re-execute the map.
    Lost {
        /// The map task whose output was lost.
        map_id: usize,
    },
    /// Fetched bytes failed checksum verification even after retries.
    Corrupt {
        /// The producing map task.
        map_id: usize,
        /// The requesting reducer.
        reduce_id: usize,
    },
    /// A worker could not be spawned or connected.
    Spawn(String),
    /// The wire conversation broke in a non-retryable way.
    Protocol(String),
    /// The backend is shut down or otherwise unable to serve.
    Unavailable(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Lost { map_id } => write!(f, "map {map_id} shuffle output lost"),
            BackendError::Corrupt { map_id, reduce_id } => {
                write!(f, "partition (map {map_id}, reduce {reduce_id}) corrupt")
            }
            BackendError::Spawn(msg) => write!(f, "worker spawn failed: {msg}"),
            BackendError::Protocol(msg) => write!(f, "wire protocol error: {msg}"),
            BackendError::Unavailable(msg) => write!(f, "backend unavailable: {msg}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// Per-stage data-plane counters, drained into
/// [`crate::metrics::JobMetrics`] when the stage finishes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Partition fetches served to reducers.
    pub fetches: u64,
    /// Fetch attempts that had to be retried (timeouts, dead workers,
    /// checksum failures).
    pub retries: u64,
    /// Worker processes (re)started while the stage ran.
    pub worker_restarts: u64,
    /// Bytes stored into the backend by map tasks.
    pub bytes_stored: u64,
    /// Bytes fetched out of the backend by reducers.
    pub bytes_fetched: u64,
}

/// Where shuffle bytes live between the map and reduce phases.
///
/// Object-safe and byte-oriented on purpose: the engine knows the
/// concrete key/value types and does the [`crate::distrib::Wire`]
/// encoding; the backend moves opaque blobs.
pub trait Backend: Send + Sync {
    /// Human-readable backend name (surfaces in metrics and benches).
    fn name(&self) -> &str;

    /// Whether the shuffle data plane leaves the engine's memory. The
    /// engine keeps its zero-copy in-memory path when this is `false`.
    fn is_distributed(&self) -> bool;

    /// Stores every map task's encoded output for the stage.
    fn submit_stage(&self, spec: &StageSpec, outputs: Vec<MapOutput>) -> Result<(), BackendError>;

    /// Re-stores one re-executed map task's output after its original
    /// was lost.
    fn restore_map(&self, spec: &StageSpec, output: MapOutput) -> Result<(), BackendError>;

    /// Fetches the encoded partition `(map_id → reduce_id)`, verifying
    /// integrity. [`BackendError::Lost`] asks the engine to re-execute
    /// the map task and [`Backend::restore_map`] its output.
    fn fetch_shuffle(
        &self,
        spec: &StageSpec,
        map_id: usize,
        reduce_id: usize,
    ) -> Result<Vec<u8>, BackendError>;

    /// Tears down the stage's shuffle state and returns its data-plane
    /// counters.
    fn finish_stage(&self, spec: &StageSpec) -> ShuffleStats;

    /// Releases all backend resources (terminates workers).
    fn shutdown(&self);
}

// ----------------------------------------------------------- local ---

/// Single-process backend.
///
/// In its default *passthrough* mode it reports
/// [`Backend::is_distributed`]` == false` and the engine never routes
/// bytes through it — the existing zero-copy threaded path is the
/// "LocalBackend" execution. In *shuffle-service* mode it exercises the
/// full distributed data plane (encode → store → track → fetch →
/// verify → decode) inside one process, optionally with deterministic
/// loss injection — the test vehicle for the engine's lost-output
/// recovery protocol.
pub struct LocalBackend {
    service: Option<ServiceState>,
}

struct ServiceState {
    manager: ShuffleManager,
    tracker: MapOutputTracker,
    /// Maps whose stored output has been "lost" by injection; fetches
    /// return [`BackendError::Lost`] until the map is restored.
    lost: Mutex<BTreeSet<(u64, usize)>>,
    loss_plan: Option<FaultPlan>,
    stats: Mutex<BTreeMap<u64, ShuffleStats>>,
}

impl LocalBackend {
    /// Passthrough backend: the engine's in-memory shuffle, untouched.
    pub fn new() -> Self {
        Self { service: None }
    }

    /// In-process shuffle service: bytes take the full distributed path
    /// through a [`ShuffleManager`] and [`MapOutputTracker`].
    pub fn shuffle_service() -> Self {
        Self::shuffle_service_inner(None)
    }

    /// Shuffle service with deterministic loss injection: map outputs
    /// for which `plan.should_fail(job, map_id, 0)` holds are dropped
    /// at store time, so the first fetch reports them lost and the
    /// engine must recover via re-execution.
    pub fn shuffle_service_with_loss(plan: FaultPlan) -> Self {
        Self::shuffle_service_inner(Some(plan))
    }

    fn shuffle_service_inner(loss_plan: Option<FaultPlan>) -> Self {
        Self {
            service: Some(ServiceState {
                manager: ShuffleManager::new(crate::blockstore::DEFAULT_BLOCK_SIZE),
                tracker: MapOutputTracker::new(),
                lost: Mutex::new(BTreeSet::new()),
                loss_plan,
                stats: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    fn service(&self) -> &ServiceState {
        self.service
            .as_ref()
            // audit: panic-ok — statically impossible: every constructor that routes bytes installs the service state.
            .expect("passthrough LocalBackend never routes bytes")
    }

    fn store_output(&self, spec: &StageSpec, output: MapOutput, count_bytes: bool) {
        let svc = self.service();
        for (reduce_id, data) in output.partitions.iter().enumerate() {
            let checksum =
                svc.manager
                    .store_partition(spec.shuffle_id, output.map_id, reduce_id, data);
            svc.tracker.register(
                spec.shuffle_id,
                output.map_id,
                reduce_id,
                BlockLocation {
                    worker: 0,
                    len: data.len() as u64,
                    checksum,
                },
            );
            if count_bytes {
                let mut stats = svc.stats.lock();
                stats.entry(spec.shuffle_id).or_default().bytes_stored += data.len() as u64;
            }
        }
    }
}

impl Default for LocalBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for LocalBackend {
    fn name(&self) -> &str {
        match self.service {
            None => "local",
            Some(_) => "local-shuffle",
        }
    }

    fn is_distributed(&self) -> bool {
        self.service.is_some()
    }

    fn submit_stage(&self, spec: &StageSpec, outputs: Vec<MapOutput>) -> Result<(), BackendError> {
        let svc = self.service();
        for output in outputs {
            let injected_loss = svc
                .loss_plan
                .as_ref()
                .is_some_and(|plan| plan.should_fail(&spec.job, output.map_id, 0));
            if injected_loss {
                // Simulated node death after map completion: the bytes
                // never make it to stable shuffle storage.
                svc.lost.lock().insert((spec.shuffle_id, output.map_id));
                continue;
            }
            self.store_output(spec, output, true);
        }
        Ok(())
    }

    fn restore_map(&self, spec: &StageSpec, output: MapOutput) -> Result<(), BackendError> {
        let svc = self.service();
        svc.lost.lock().remove(&(spec.shuffle_id, output.map_id));
        self.store_output(spec, output, false);
        Ok(())
    }

    fn fetch_shuffle(
        &self,
        spec: &StageSpec,
        map_id: usize,
        reduce_id: usize,
    ) -> Result<Vec<u8>, BackendError> {
        let svc = self.service();
        if svc.lost.lock().contains(&(spec.shuffle_id, map_id)) {
            let mut stats = svc.stats.lock();
            stats.entry(spec.shuffle_id).or_default().retries += 1;
            return Err(BackendError::Lost { map_id });
        }
        let loc = svc
            .tracker
            .lookup(spec.shuffle_id, map_id, reduce_id)
            .ok_or(BackendError::Lost { map_id })?;
        let data = svc
            .manager
            .fetch_partition(spec.shuffle_id, map_id, reduce_id, loc.checksum)
            .map_err(|e| match e {
                ShuffleError::Missing { .. } => BackendError::Lost { map_id },
                ShuffleError::Corrupt { .. } => BackendError::Corrupt { map_id, reduce_id },
            })?;
        let mut stats = svc.stats.lock();
        let entry = stats.entry(spec.shuffle_id).or_default();
        entry.fetches += 1;
        entry.bytes_fetched += data.len() as u64;
        Ok(data)
    }

    fn finish_stage(&self, spec: &StageSpec) -> ShuffleStats {
        let svc = self.service();
        svc.manager.delete_shuffle(spec.shuffle_id);
        svc.tracker.unregister_shuffle(spec.shuffle_id);
        svc.lost.lock().retain(|&(sid, _)| sid != spec.shuffle_id);
        svc.stats
            .lock()
            .remove(&spec.shuffle_id)
            .unwrap_or_default()
    }

    fn shutdown(&self) {
        if let Some(svc) = &self.service {
            svc.manager.clear();
        }
    }
}

// ----------------------------------------------------------- choice ---

/// Which backend an engine should execute on. Parsed from
/// [`MrConfig`](crate::MrConfig)'s `backend` field or the
/// `P3C_BACKEND` environment variable (`local`, `local-shuffle`,
/// `process:N`).
#[derive(Debug, Clone, PartialEq)]
pub enum BackendChoice {
    /// In-process threaded engine, zero-copy shuffle (the default).
    Local,
    /// In-process shuffle service: full distributed data plane in one
    /// process.
    LocalShuffle,
    /// Spawned worker subprocesses holding the shuffle, reached over
    /// the length-prefixed TCP protocol.
    Process {
        /// Number of worker subprocesses.
        workers: usize,
        /// Optional deterministic worker-kill plan (tests): when
        /// `should_fail(job, map_id, 0)` first holds during a stage,
        /// the worker owning that map's output is killed mid-stage.
        kill: Option<FaultPlan>,
    },
}

impl BackendChoice {
    /// Parses `local`, `local-shuffle`, or `process:N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "local" => Ok(BackendChoice::Local),
            "local-shuffle" => Ok(BackendChoice::LocalShuffle),
            other => {
                if let Some(n) = other.strip_prefix("process:") {
                    let workers: usize = n
                        .parse()
                        .map_err(|_| format!("bad worker count in backend '{other}'"))?;
                    if workers == 0 {
                        return Err("process backend needs at least one worker".to_string());
                    }
                    Ok(BackendChoice::Process {
                        workers,
                        kill: None,
                    })
                } else if other == "process" {
                    Ok(BackendChoice::Process {
                        workers: 2,
                        kill: None,
                    })
                } else {
                    Err(format!(
                        "unknown backend '{other}' (expected local, local-shuffle, process[:N])"
                    ))
                }
            }
        }
    }

    /// The default choice, honouring `P3C_BACKEND` when set (this is
    /// how `ci.sh` reruns the whole tier-1 suite under the process
    /// backend without touching any test).
    pub fn from_env() -> Self {
        match std::env::var("P3C_BACKEND") {
            Ok(v) if !v.is_empty() => Self::parse(&v).unwrap_or(BackendChoice::Local),
            _ => BackendChoice::Local,
        }
    }

    /// Builds the chosen backend.
    pub fn build(&self) -> Arc<dyn Backend> {
        match self {
            BackendChoice::Local => Arc::new(LocalBackend::new()),
            BackendChoice::LocalShuffle => Arc::new(LocalBackend::shuffle_service()),
            BackendChoice::Process { workers, kill } => {
                Arc::new(super::process::ProcessBackend::new(*workers, *kill))
            }
        }
    }
}

impl Default for BackendChoice {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn spec() -> StageSpec {
        StageSpec {
            shuffle_id: 1,
            job: "t".to_string(),
            num_maps: 2,
            num_reducers: 2,
        }
    }

    fn outputs() -> Vec<MapOutput> {
        vec![
            MapOutput {
                map_id: 0,
                partitions: vec![b"m0r0".to_vec(), b"m0r1".to_vec()],
            },
            MapOutput {
                map_id: 1,
                partitions: vec![b"m1r0".to_vec(), Vec::new()],
            },
        ]
    }

    #[test]
    fn passthrough_is_not_distributed() {
        let b = LocalBackend::new();
        assert!(!b.is_distributed());
        assert_eq!(b.name(), "local");
    }

    #[test]
    fn shuffle_service_roundtrips_and_counts() {
        let b = LocalBackend::shuffle_service();
        assert!(b.is_distributed());
        let spec = spec();
        b.submit_stage(&spec, outputs()).unwrap();
        assert_eq!(b.fetch_shuffle(&spec, 0, 1).unwrap(), b"m0r1");
        assert_eq!(b.fetch_shuffle(&spec, 1, 1).unwrap(), Vec::<u8>::new());
        let stats = b.finish_stage(&spec);
        assert_eq!(stats.fetches, 2);
        assert_eq!(stats.bytes_stored, 4 + 4 + 4);
        assert_eq!(stats.bytes_fetched, 4);
        // Stage is gone after finish.
        assert!(matches!(
            b.fetch_shuffle(&spec, 0, 0),
            Err(BackendError::Lost { map_id: 0 })
        ));
    }

    #[test]
    fn injected_loss_reports_lost_until_restored() {
        // Probability 1 ⇒ every map's output is dropped at store time.
        let b = LocalBackend::shuffle_service_with_loss(FaultPlan::new(1.0, 7));
        let spec = spec();
        b.submit_stage(&spec, outputs()).unwrap();
        assert_eq!(
            b.fetch_shuffle(&spec, 0, 0),
            Err(BackendError::Lost { map_id: 0 })
        );
        b.restore_map(
            &spec,
            MapOutput {
                map_id: 0,
                partitions: vec![b"m0r0".to_vec(), b"m0r1".to_vec()],
            },
        )
        .unwrap();
        assert_eq!(b.fetch_shuffle(&spec, 0, 0).unwrap(), b"m0r0");
        let stats = b.finish_stage(&spec);
        assert!(stats.retries >= 1, "injected loss counts as a retry");
    }

    #[test]
    fn choice_parsing() {
        assert_eq!(BackendChoice::parse("local"), Ok(BackendChoice::Local));
        assert_eq!(
            BackendChoice::parse("local-shuffle"),
            Ok(BackendChoice::LocalShuffle)
        );
        assert_eq!(
            BackendChoice::parse("process:4"),
            Ok(BackendChoice::Process {
                workers: 4,
                kill: None
            })
        );
        assert_eq!(
            BackendChoice::parse("process"),
            Ok(BackendChoice::Process {
                workers: 2,
                kill: None
            })
        );
        assert!(BackendChoice::parse("process:0").is_err());
        assert!(BackendChoice::parse("process:x").is_err());
        assert!(BackendChoice::parse("threads").is_err());
    }
}
