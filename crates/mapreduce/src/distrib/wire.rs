//! Binary codec and frame protocol for the distributed backend.
//!
//! Shuffle payloads cross a process boundary, so keys and values need a
//! real serialized form (the in-process engine only ever *estimates*
//! bytes via [`crate::weight::Weighable`]). [`Wire`] is that form: a
//! tiny, hand-rolled, little-endian binary codec with one non-negotiable
//! property — **exact round-trips**. Floats travel as raw IEEE-754 bits
//! (`to_bits`/`from_bits`), never through text, so a value decoded on
//! the reducer side is bit-identical to what the mapper emitted. That is
//! what lets the distributed path keep the engine's byte-determinism
//! contract (DESIGN.md §5, §12).
//!
//! The module also defines the framing used on the master↔worker socket:
//! `[u32 length][u8 opcode][payload]`, little-endian, with an FNV-1a
//! checksum over every shuffle partition (see [`fnv1a64`]).

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload (256 MiB); anything larger
/// is treated as a corrupt stream rather than an allocation request —
/// a reader must never allocate on the say-so of four wire bytes.
pub const MAX_FRAME_LEN: usize = 1 << 28;

// ------------------------------------------------------------ opcodes ---

/// Worker → master greeting carrying the worker id.
pub const OP_HELLO: u8 = 1;
/// Master → worker: store one shuffle partition.
pub const OP_STORE: u8 = 2;
/// Worker → master: partition stored and checksum verified.
pub const OP_STORE_OK: u8 = 3;
/// Master → worker: fetch one shuffle partition.
pub const OP_FETCH: u8 = 4;
/// Worker → master: partition bytes plus checksum.
pub const OP_FETCH_OK: u8 = 5;
/// Either direction: request failed; payload is `(code, message)`.
pub const OP_ERR: u8 = 6;
/// Master → worker: liveness probe.
pub const OP_PING: u8 = 7;
/// Worker → master: liveness reply.
pub const OP_PONG: u8 = 8;
/// Master → worker: delete every partition of one shuffle id.
pub const OP_DELETE_SID: u8 = 9;
/// Master → worker: exit cleanly.
pub const OP_SHUTDOWN: u8 = 10;
/// Master → worker (tests only): drop all stored partitions and die
/// without replying — the injected "node crash".
pub const OP_KILL: u8 = 11;

/// `OP_ERR` code: the requested partition is not on this worker.
pub const ERR_NOT_FOUND: u64 = 1;
/// `OP_ERR` code: stored bytes no longer match their checksum.
pub const ERR_CORRUPT: u64 = 2;
/// `OP_ERR` code: the request frame itself could not be decoded.
pub const ERR_MALFORMED: u64 = 3;

// ------------------------------------------------------------- errors ---

/// Decoding failures of the [`Wire`] codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// The bytes decoded to an invalid value (bad tag, bad length, or
    /// trailing garbage).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire payload truncated"),
            WireError::Malformed(what) => write!(f, "malformed wire payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// -------------------------------------------------------------- codec ---

/// Bounded cursor over a received payload.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes, or errors if the buffer is short.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N)?);
        Ok(a)
    }

    /// Reads one `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take_array::<1>()?[0])
    }

    /// Reads one little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads one little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a `u32` length prefix, bounds-checked against the bytes
    /// actually remaining so corrupt prefixes cannot drive allocation.
    pub fn len_prefix(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::Malformed("length prefix exceeds payload"));
        }
        Ok(n)
    }
}

/// Exact binary serialization for values that cross the wire.
///
/// Mirrors the [`crate::weight::Weighable`] family: every key/value type
/// a job shuffles implements it, compositionally. The contract is exact
/// round-tripping — `decode(encode(x)) == x` bit-for-bit, floats
/// included.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes one value from the reader.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh buffer.
pub fn encode_to_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decodes exactly one value from `buf`; trailing bytes are an error.
pub fn decode_from_slice<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes after value"));
    }
    Ok(value)
}

macro_rules! int_wire {
    ($($t:ty => $u:ty),* $(,)?) => {
        $(impl Wire for $t {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&(*self as $u).to_le_bytes());
            }
            #[inline]
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(<$u>::from_le_bytes(r.take_array()?) as $t)
            }
        })*
    };
}

int_wire!(
    u8 => u8, i8 => u8,
    u16 => u16, i16 => u16,
    u32 => u32, i32 => u32,
    u64 => u64, i64 => u64,
    // usize travels as 8 bytes so layouts agree across platforms.
    usize => u64, isize => u64,
);

impl Wire for f64 {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(r.take_array()?)))
    }
}

impl Wire for f32 {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    #[inline]
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::from_le_bytes(r.take_array()?)))
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool tag")),
        }
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.len_prefix()?;
        String::from_utf8(r.take(n)?.to_vec()).map_err(|_| WireError::Malformed("utf-8 string"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.u32()? as usize;
        // Elements are at least one byte each; reject prefixes that the
        // remaining payload can't possibly satisfy before allocating.
        if n > r.remaining() && std::mem::size_of::<T>() > 0 {
            return Err(WireError::Malformed("vec length exceeds payload"));
        }
        let mut out = Vec::with_capacity(n.min(r.remaining().max(1)));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Malformed("option tag")),
        }
    }
}

impl<T: Wire> Wire for Box<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

// ----------------------------------------------------------- checksum ---

/// FNV-1a over a byte slice — the partition checksum recorded by the
/// `MapOutputTracker` and verified on every store and fetch.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------- frames ---

/// Writes one `[u32 len][u8 opcode][payload]` frame.
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[opcode])?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; errors on EOF, short reads, or oversized lengths.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let opcode = head[4];
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((opcode, payload))
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let buf = encode_to_vec(&v);
        assert_eq!(decode_from_slice::<T>(&buf).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(-5i8);
        roundtrip(u16::MAX);
        roundtrip(-12345i16);
        roundtrip(u32::MAX);
        roundtrip(i32::MIN);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(usize::MAX);
        roundtrip(-1isize);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for v in [
            0.0f64,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0 / 3.0,
            f64::EPSILON,
        ] {
            let buf = encode_to_vec(&v);
            let back = decode_from_slice::<f64>(&buf).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // NaN payload bits survive too.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let back = decode_from_slice::<f64>(&encode_to_vec(&nan)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
        let f = 1.0f32 / 3.0;
        assert_eq!(
            decode_from_slice::<f32>(&encode_to_vec(&f))
                .unwrap()
                .to_bits(),
            f.to_bits()
        );
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
        roundtrip(vec![1.5f64, -2.5, 3.25]);
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![vec![1u32, 2], vec![], vec![3]]);
        roundtrip(Some(7u64));
        roundtrip(None::<String>);
        roundtrip(Box::new(42i64));
        roundtrip((1usize, 2.5f64));
        roundtrip((1u8, String::from("k"), vec![0.5f64]));
        roundtrip((1u8, 2u16, 3u32, 4u64));
    }

    #[test]
    fn shuffle_shaped_payloads_roundtrip() {
        // The shapes the pipelines actually shuffle.
        roundtrip(vec![(3usize, vec![1.0f64, 2.0]), (9, vec![])]);
        roundtrip(vec![((1usize, 2usize), (0.25f64, 0.75f64))]);
        roundtrip(vec![(0usize, (vec![1.0f64], 2.0f64))]);
    }

    #[test]
    fn malformed_payloads_are_errors_not_panics() {
        assert_eq!(
            decode_from_slice::<u64>(&[1, 2, 3]),
            Err(WireError::Truncated)
        );
        assert!(matches!(
            decode_from_slice::<bool>(&[9]),
            Err(WireError::Malformed(_))
        ));
        // Truncated string body.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"ab");
        assert!(decode_from_slice::<String>(&buf).is_err());
        // Hostile vec length prefix must not allocate or panic.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_from_slice::<Vec<u64>>(&buf).is_err());
        // Trailing garbage rejected.
        let mut buf = encode_to_vec(&1u64);
        buf.push(0);
        assert!(matches!(
            decode_from_slice::<u64>(&buf),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_STORE, b"payload").unwrap();
        write_frame(&mut buf, OP_PING, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (op, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!((op, payload.as_slice()), (OP_STORE, b"payload".as_slice()));
        let (op, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!((op, payload.as_slice()), (OP_PING, b"".as_slice()));
        assert!(read_frame(&mut cursor).is_err(), "EOF is an error");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.push(OP_STORE);
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fnv_checksum_is_stable_and_sensitive() {
        // Pinned value: the tracker persists checksums, so the function
        // must never drift.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
