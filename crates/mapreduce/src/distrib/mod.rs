//! Distributed execution backends: shared-nothing shuffle under the
//! same `Job`/DAG API.
//!
//! The paper runs P3C+ on a real Hadoop cluster; this subsystem gives
//! the engine the corresponding execution substrate (DESIGN.md §12):
//!
//! * [`Backend`] — the seam between task execution and the shuffle
//!   data plane. The engine encodes each map task's partitions with the
//!   exact-round-trip [`Wire`] codec, submits them, and fetches them
//!   back per reducer in deterministic map order.
//! * [`LocalBackend`] — the threaded in-process engine. Passthrough by
//!   default (zero-copy shuffle, `is_distributed() == false`); its
//!   *shuffle-service* mode runs the full distributed byte path in one
//!   process, with optional deterministic loss injection.
//! * [`ProcessBackend`] — spawns `p3c worker --connect …` subprocesses
//!   of the same binary; shuffle partitions live in the workers and
//!   move over a length-prefixed TCP frame protocol with checksums,
//!   timeouts, retry/backoff, and worker respawn.
//! * [`MapOutputTracker`] — the master's registry of
//!   `(shuffle_id, map_id, reduce_id) → location + checksum`; worker
//!   death invalidates entries so fetches report the map output lost
//!   and the engine re-executes the map task (lineage recovery at the
//!   task level).
//! * [`ShuffleManager`] — checksummed partition storage over a
//!   [`BlockStore`](crate::BlockStore), used by worker processes and
//!   the in-process shuffle service alike.
//!
//! Because the partitioner is seeded, the merge is order-deterministic,
//! and the codec round-trips floats bit-exactly, all three pipelines
//! produce byte-identical output on every backend at every worker
//! count — the property the `distributed_backend` integration tests
//! pin.

pub mod backend;
pub mod process;
pub mod shuffle;
pub mod tracker;
pub mod wire;
pub mod worker;

pub use backend::{
    Backend, BackendChoice, BackendError, LocalBackend, MapOutput, ShuffleStats, StageSpec,
};
pub use process::ProcessBackend;
pub use shuffle::{shuffle_key, ShuffleError, ShuffleManager};
pub use tracker::{BlockLocation, MapOutputTracker};
pub use wire::{decode_from_slice, encode_to_vec, fnv1a64, Wire, WireError, WireReader};
pub use worker::run_worker;
