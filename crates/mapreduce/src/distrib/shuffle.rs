//! Checksummed shuffle-partition storage over a [`BlockStore`].
//!
//! One [`ShuffleManager`] fronts one store — the worker process wraps
//! its local store in one, and the in-process shuffle service of
//! [`crate::distrib::LocalBackend`] does the same on the master. Every
//! partition is written under `shuffle/{sid}/{map}/{reduce}` together
//! with its FNV-1a checksum, and every read re-verifies the checksum,
//! so corruption surfaces as a retryable error instead of silently
//! wrong reducer input.

use super::wire::fnv1a64;
use crate::blockstore::BlockStore;

/// Storage-side shuffle failures, reported over the wire as `OP_ERR`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleError {
    /// The partition was never stored here, or was deleted.
    Missing {
        /// The missing partition's block name.
        key: String,
    },
    /// The stored bytes no longer match the checksum recorded at store
    /// time.
    Corrupt {
        /// The corrupt partition's block name.
        key: String,
    },
}

impl std::fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShuffleError::Missing { key } => write!(f, "shuffle partition '{key}' missing"),
            ShuffleError::Corrupt { key } => write!(f, "shuffle partition '{key}' corrupt"),
        }
    }
}

impl std::error::Error for ShuffleError {}

/// Block-store name of one shuffle partition.
pub fn shuffle_key(shuffle_id: u64, map_id: usize, reduce_id: usize) -> String {
    format!("shuffle/{shuffle_id}/{map_id}/{reduce_id}")
}

/// Writes and reads checksummed shuffle partitions on one block store.
#[derive(Debug, Default)]
pub struct ShuffleManager {
    store: BlockStore,
}

impl ShuffleManager {
    /// A manager over a fresh store with the given block size.
    /// Replication is 1: shuffle output is transient and re-creatable
    /// from lineage, exactly like Hadoop's un-replicated map output.
    pub fn new(block_size: usize) -> Self {
        Self {
            store: BlockStore::new(block_size, 1),
        }
    }

    /// The underlying store (for byte accounting).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Stores one partition and returns its checksum.
    pub fn store_partition(
        &self,
        shuffle_id: u64,
        map_id: usize,
        reduce_id: usize,
        data: &[u8],
    ) -> u64 {
        let checksum = fnv1a64(data);
        self.store
            .write(&shuffle_key(shuffle_id, map_id, reduce_id), data);
        checksum
    }

    /// Fetches one partition, verifying it against `expected_checksum`.
    pub fn fetch_partition(
        &self,
        shuffle_id: u64,
        map_id: usize,
        reduce_id: usize,
        expected_checksum: u64,
    ) -> Result<Vec<u8>, ShuffleError> {
        let key = shuffle_key(shuffle_id, map_id, reduce_id);
        let data = self
            .store
            .read(&key)
            .ok_or_else(|| ShuffleError::Missing { key: key.clone() })?;
        if fnv1a64(&data) != expected_checksum {
            return Err(ShuffleError::Corrupt { key });
        }
        Ok(data)
    }

    /// Deletes every partition of one shuffle id; returns how many
    /// block-store files were removed.
    pub fn delete_shuffle(&self, shuffle_id: u64) -> usize {
        self.store.delete_prefix(&format!("shuffle/{shuffle_id}/"))
    }

    /// Deletes everything (worker shutdown / injected crash).
    pub fn clear(&self) -> usize {
        self.store.delete_prefix("shuffle/")
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn store_fetch_roundtrip_with_checksum() {
        let m = ShuffleManager::new(64);
        let sum = m.store_partition(3, 1, 2, b"partition bytes");
        assert_eq!(sum, fnv1a64(b"partition bytes"));
        assert_eq!(m.fetch_partition(3, 1, 2, sum).unwrap(), b"partition bytes");
    }

    #[test]
    fn missing_and_corrupt_are_distinct_errors() {
        let m = ShuffleManager::new(64);
        assert!(matches!(
            m.fetch_partition(1, 0, 0, 0),
            Err(ShuffleError::Missing { .. })
        ));
        let sum = m.store_partition(1, 0, 0, b"data");
        assert!(matches!(
            m.fetch_partition(1, 0, 0, sum ^ 1),
            Err(ShuffleError::Corrupt { .. })
        ));
    }

    #[test]
    fn delete_shuffle_scopes_to_sid() {
        let m = ShuffleManager::new(64);
        m.store_partition(1, 0, 0, b"a");
        m.store_partition(1, 0, 1, b"b");
        m.store_partition(10, 0, 0, b"c");
        // Prefix "shuffle/1/" must not sweep sid 10.
        assert_eq!(m.delete_shuffle(1), 2);
        let sum = fnv1a64(b"c");
        assert!(m.fetch_partition(10, 0, 0, sum).is_ok());
        assert_eq!(m.clear(), 1);
    }

    #[test]
    fn empty_partition_roundtrips() {
        let m = ShuffleManager::new(64);
        let sum = m.store_partition(2, 0, 0, b"");
        assert_eq!(m.fetch_partition(2, 0, 0, sum).unwrap(), Vec::<u8>::new());
    }
}
