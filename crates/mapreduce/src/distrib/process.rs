//! Multi-process backend: worker subprocesses hold the shuffle.
//!
//! The master binds a loopback `TcpListener` and lazily spawns `N`
//! worker subprocesses of the same binary (`p3c worker --connect <addr>
//! --id <i>`). Each worker dials back, sends `HELLO`, and then serves
//! the length-prefixed frame protocol of [`crate::distrib::wire`] over
//! that single duplex connection: the master pushes `STORE` frames as
//! map tasks finish (map `m`'s output lives on worker `m % N`) and
//! reducers pull `FETCH` frames back, each verified against the
//! checksum the [`MapOutputTracker`] recorded at store time.
//!
//! Failure handling mirrors Hadoop's tasktracker loss: an I/O error or
//! timeout on a worker's socket marks it dead — the master kills and
//! respawns the subprocess, invalidates every tracker entry it held,
//! and reports the affected map outputs as [`BackendError::Lost`] so
//! the engine re-executes those map tasks. A deterministic
//! [`FaultPlan`] can inject exactly that mid-stage (the `KILL` frame
//! makes the worker drop its partitions and exit), which is how the
//! worker-crash recovery tests drive the full protocol.

use super::backend::{Backend, BackendError, MapOutput, ShuffleStats, StageSpec};
use super::tracker::{BlockLocation, MapOutputTracker};
use super::wire::{
    self, fnv1a64, read_frame, write_frame, WireReader, ERR_NOT_FOUND, OP_DELETE_SID, OP_ERR,
    OP_FETCH, OP_FETCH_OK, OP_HELLO, OP_KILL, OP_SHUTDOWN, OP_STORE, OP_STORE_OK,
};
use crate::fault::FaultPlan;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How long a worker gets to dial back after being spawned.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);
/// Per-frame read timeout on worker sockets; a stuck worker is treated
/// as dead rather than wedging the stage.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Fetch attempts per partition before escalating the error.
const FETCH_ATTEMPTS: usize = 3;

/// Spawned-subprocess backend; see the module docs.
pub struct ProcessBackend {
    num_workers: usize,
    kill_plan: Option<FaultPlan>,
    tracker: MapOutputTracker,
    state: Mutex<ClusterState>,
    stats: Mutex<BTreeMap<u64, ShuffleStats>>,
    /// Stages that already consumed their injected kill (one per stage).
    kills_fired: Mutex<BTreeSet<u64>>,
}

enum ClusterState {
    /// Workers spawn on first use, so engines that never run a
    /// distributed stage cost nothing.
    Idle,
    Up(Cluster),
    Down,
}

struct Cluster {
    listener: TcpListener,
    workers: Vec<WorkerConn>,
}

struct WorkerConn {
    child: Child,
    stream: TcpStream,
}

impl ProcessBackend {
    /// Backend over `num_workers` subprocesses, with an optional
    /// deterministic worker-kill plan (see [`BackendChoice`]).
    ///
    /// [`BackendChoice`]: super::backend::BackendChoice
    pub fn new(num_workers: usize, kill_plan: Option<FaultPlan>) -> Self {
        Self {
            num_workers: num_workers.max(1),
            kill_plan,
            tracker: MapOutputTracker::new(),
            state: Mutex::new(ClusterState::Idle),
            stats: Mutex::new(BTreeMap::new()),
            kills_fired: Mutex::new(BTreeSet::new()),
        }
    }

    /// Number of worker subprocesses this backend runs.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    fn worker_for(&self, map_id: usize) -> usize {
        map_id % self.num_workers
    }

    fn stat<R>(&self, shuffle_id: u64, f: impl FnOnce(&mut ShuffleStats) -> R) -> R {
        f(self.stats.lock().entry(shuffle_id).or_default())
    }

    /// Boots the cluster if it is not up yet.
    fn ensure_up<'a>(&self, state: &'a mut ClusterState) -> Result<&'a mut Cluster, BackendError> {
        if let ClusterState::Idle = state {
            let listener = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| BackendError::Spawn(format!("bind listener: {e}")))?;
            let addr = listener
                .local_addr()
                .map_err(|e| BackendError::Spawn(format!("listener addr: {e}")))?
                .to_string();
            let binary = worker_binary()?;
            let mut workers = Vec::with_capacity(self.num_workers);
            for id in 0..self.num_workers {
                workers.push(spawn_worker(&listener, &binary, &addr, id)?);
            }
            *state = ClusterState::Up(Cluster { listener, workers });
        }
        match state {
            ClusterState::Up(cluster) => Ok(cluster),
            ClusterState::Down => Err(BackendError::Unavailable("backend shut down".to_string())),
            // audit: panic-ok — statically impossible: the Idle arm above just replaced the state with Up.
            ClusterState::Idle => unreachable!("cluster booted above"),
        }
    }

    /// Declares worker `w` dead: kill the subprocess, spawn a fresh one,
    /// and drop every tracker entry that pointed at it. Entries lost
    /// here surface as [`BackendError::Lost`] on the next fetch.
    fn restart_worker(
        &self,
        cluster: &mut Cluster,
        w: usize,
        shuffle_id: u64,
    ) -> Result<(), BackendError> {
        let addr = cluster
            .listener
            .local_addr()
            .map_err(|e| BackendError::Spawn(format!("listener addr: {e}")))?
            .to_string();
        let old = &mut cluster.workers[w];
        let _ = old.child.kill();
        let _ = old.child.wait();
        let binary = worker_binary()?;
        cluster.workers[w] = spawn_worker(&cluster.listener, &binary, &addr, w)?;
        self.tracker.invalidate_worker(w);
        self.stat(shuffle_id, |s| s.worker_restarts += 1);
        Ok(())
    }

    /// One request/response exchange with worker `w`.
    fn call(
        cluster: &mut Cluster,
        w: usize,
        opcode: u8,
        payload: &[u8],
    ) -> io::Result<(u8, Vec<u8>)> {
        let stream = &mut cluster.workers[w].stream;
        write_frame(stream, opcode, payload)?;
        read_frame(stream)
    }

    /// Stores one map task's partitions on its worker, retrying across
    /// one worker restart. Registers every partition with the tracker.
    fn store_map(
        &self,
        cluster: &mut Cluster,
        spec: &StageSpec,
        output: &MapOutput,
        meter_bytes: bool,
    ) -> Result<(), BackendError> {
        let w = self.worker_for(output.map_id);
        for (reduce_id, data) in output.partitions.iter().enumerate() {
            let checksum = fnv1a64(data);
            let mut payload = Vec::with_capacity(32 + data.len());
            spec.shuffle_id.encode_into(&mut payload);
            (output.map_id as u64).encode_into(&mut payload);
            (reduce_id as u64).encode_into(&mut payload);
            checksum.encode_into(&mut payload);
            payload.extend_from_slice(data);

            let mut stored = false;
            for attempt in 0..2 {
                match Self::call(cluster, w, OP_STORE, &payload) {
                    Ok((OP_STORE_OK, _)) => {
                        stored = true;
                        break;
                    }
                    Ok((op, body)) => {
                        return Err(BackendError::Protocol(format!(
                            "unexpected reply {op} to STORE: {}",
                            decode_err(&body)
                        )));
                    }
                    Err(e) => {
                        // Worker socket broke mid-store: restart it and
                        // try once more on the fresh process.
                        self.stat(spec.shuffle_id, |s| s.retries += 1);
                        self.restart_worker(cluster, w, spec.shuffle_id)?;
                        if attempt == 1 {
                            return Err(BackendError::Unavailable(format!(
                                "store to worker {w} failed twice: {e}"
                            )));
                        }
                    }
                }
            }
            debug_assert!(stored);
            self.tracker.register(
                spec.shuffle_id,
                output.map_id,
                reduce_id,
                BlockLocation {
                    worker: w,
                    len: data.len() as u64,
                    checksum,
                },
            );
            if meter_bytes {
                self.stat(spec.shuffle_id, |s| s.bytes_stored += data.len() as u64);
            }
        }
        Ok(())
    }

    /// Fires the stage's injected worker kill if the plan calls for it
    /// on this map id (at most one kill per stage).
    fn maybe_inject_kill(
        &self,
        cluster: &mut Cluster,
        spec: &StageSpec,
        map_id: usize,
    ) -> Result<(), BackendError> {
        let Some(plan) = &self.kill_plan else {
            return Ok(());
        };
        if !plan.should_fail(&spec.job, map_id, 0) {
            return Ok(());
        }
        if !self.kills_fired.lock().insert(spec.shuffle_id) {
            return Ok(());
        }
        let w = self.worker_for(map_id);
        // The KILL frame makes the worker drop its partitions and exit
        // without replying — a node crash with everything it held.
        let _ = write_frame(&mut cluster.workers[w].stream, OP_KILL, &[]);
        let _ = cluster.workers[w].child.wait();
        self.restart_worker(cluster, w, spec.shuffle_id)
    }
}

/// Little-endian u64 append, used for hand-built frame payloads.
trait EncodeInto {
    fn encode_into(self, buf: &mut Vec<u8>);
}

impl EncodeInto for u64 {
    fn encode_into(self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
}

impl Backend for ProcessBackend {
    fn name(&self) -> &str {
        "process"
    }

    fn is_distributed(&self) -> bool {
        true
    }

    fn submit_stage(&self, spec: &StageSpec, outputs: Vec<MapOutput>) -> Result<(), BackendError> {
        let mut state = self.state.lock();
        // audit: lock-blocking-ok — lazy cluster boot is serialized under `backend.state` by design (§15).
        let cluster = self.ensure_up(&mut state)?;
        for output in &outputs {
            // Kill *before* storing this map's partitions: earlier maps
            // on the same worker are lost (and recovered at fetch
            // time); this map stores cleanly on the fresh process.
            // audit: lock-blocking-ok — fault-injection kill RPC on the serialized control plane (§15).
            self.maybe_inject_kill(cluster, spec, output.map_id)?;
            // audit: lock-blocking-ok — map-output store RPC on the serialized control plane (§15).
            self.store_map(cluster, spec, output, true)?;
        }
        Ok(())
    }

    fn restore_map(&self, spec: &StageSpec, output: MapOutput) -> Result<(), BackendError> {
        let mut state = self.state.lock();
        // audit: lock-blocking-ok — lazy cluster boot is serialized under `backend.state` by design (§15).
        let cluster = self.ensure_up(&mut state)?;
        // audit: lock-blocking-ok — map-output store RPC on the serialized control plane (§15).
        self.store_map(cluster, spec, &output, false)
    }

    fn fetch_shuffle(
        &self,
        spec: &StageSpec,
        map_id: usize,
        reduce_id: usize,
    ) -> Result<Vec<u8>, BackendError> {
        let mut state = self.state.lock();
        // audit: lock-blocking-ok — lazy cluster boot (spawn/accept/handshake) is serialized under `backend.state` by design (§15).
        let cluster = self.ensure_up(&mut state)?;
        let Some(loc) = self.tracker.lookup(spec.shuffle_id, map_id, reduce_id) else {
            // Never registered, or invalidated by a worker death.
            return Err(BackendError::Lost { map_id });
        };
        let mut payload = Vec::with_capacity(24);
        spec.shuffle_id.encode_into(&mut payload);
        (map_id as u64).encode_into(&mut payload);
        (reduce_id as u64).encode_into(&mut payload);

        for attempt in 0..FETCH_ATTEMPTS {
            if attempt > 0 {
                self.stat(spec.shuffle_id, |s| s.retries += 1);
                // Exponential backoff between attempts against a live
                // worker (corruption or transient short reads).
                // audit: lock-blocking-ok — bounded backoff (at most 40ms) between fetch retries on the serialized control plane.
                std::thread::sleep(Duration::from_millis(5 << attempt));
            }
            // audit: lock-blocking-ok — fetch RPC under `backend.state`: the control plane is intentionally serialized (§15).
            match Self::call(cluster, loc.worker, OP_FETCH, &payload) {
                Ok((OP_FETCH_OK, body)) => {
                    let mut r = WireReader::new(&body);
                    let Ok(checksum) = r.u64() else {
                        return Err(BackendError::Protocol("short FETCH_OK frame".to_string()));
                    };
                    let data = body[8..].to_vec();
                    if checksum != loc.checksum || fnv1a64(&data) != checksum {
                        // Bytes mutated in storage or transit; retry,
                        // then report corruption.
                        if attempt + 1 == FETCH_ATTEMPTS {
                            return Err(BackendError::Corrupt { map_id, reduce_id });
                        }
                        continue;
                    }
                    self.stat(spec.shuffle_id, |s| {
                        s.fetches += 1;
                        s.bytes_fetched += data.len() as u64;
                    });
                    return Ok(data);
                }
                Ok((OP_ERR, body)) => {
                    let (code, msg) = decode_err_parts(&body);
                    if code == ERR_NOT_FOUND {
                        // The worker restarted since registration; its
                        // copy is gone for good.
                        self.tracker.invalidate_worker(loc.worker);
                        self.stat(spec.shuffle_id, |s| s.retries += 1);
                        return Err(BackendError::Lost { map_id });
                    }
                    if attempt + 1 == FETCH_ATTEMPTS {
                        return Err(BackendError::Protocol(format!(
                            "FETCH failed with code {code}: {msg}"
                        )));
                    }
                }
                Ok((op, _)) => {
                    return Err(BackendError::Protocol(format!(
                        "unexpected reply {op} to FETCH"
                    )));
                }
                Err(_) => {
                    // Dead worker: everything it held is lost; restart
                    // it and let the engine re-execute.
                    self.stat(spec.shuffle_id, |s| s.retries += 1);
                    // audit: lock-blocking-ok — dead-worker restart is part of the serialized control plane (§15).
                    self.restart_worker(cluster, loc.worker, spec.shuffle_id)?;
                    return Err(BackendError::Lost { map_id });
                }
            }
        }
        Err(BackendError::Unavailable(format!(
            "fetch (map {map_id}, reduce {reduce_id}) exhausted retries"
        )))
    }

    fn finish_stage(&self, spec: &StageSpec) -> ShuffleStats {
        let mut state = self.state.lock();
        if let ClusterState::Up(cluster) = &mut *state {
            let mut payload = Vec::with_capacity(8);
            spec.shuffle_id.encode_into(&mut payload);
            for w in 0..cluster.workers.len() {
                // Best-effort cleanup; a dead worker has nothing to
                // delete anyway.
                // audit: lock-blocking-ok — best-effort stage-cleanup RPC; the control plane is serialized under `backend.state` by design (§15).
                let _ = Self::call(cluster, w, OP_DELETE_SID, &payload);
            }
        }
        self.tracker.unregister_shuffle(spec.shuffle_id);
        self.kills_fired.lock().remove(&spec.shuffle_id);
        self.stats
            .lock()
            .remove(&spec.shuffle_id)
            .unwrap_or_default()
    }

    fn shutdown(&self) {
        let mut state = self.state.lock();
        if let ClusterState::Up(cluster) = &mut *state {
            for conn in &mut cluster.workers {
                // audit: lock-blocking-ok — shutdown broadcast over the serialized control plane (§15).
                let _ = write_frame(&mut conn.stream, OP_SHUTDOWN, &[]);
            }
            for conn in &mut cluster.workers {
                // audit: lock-blocking-ok — shutdown joins worker children under the serialized control plane; no lock ranks below `backend.state` here.
                wait_or_kill(&mut conn.child);
            }
        }
        *state = ClusterState::Down;
    }
}

impl Drop for ProcessBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decodes an `OP_ERR` payload for diagnostics.
fn decode_err_parts(body: &[u8]) -> (u64, String) {
    let mut r = WireReader::new(body);
    let code = r.u64().unwrap_or(0);
    let msg = <String as wire::Wire>::decode(&mut r).unwrap_or_default();
    (code, msg)
}

fn decode_err(body: &[u8]) -> String {
    let (code, msg) = decode_err_parts(body);
    format!("code {code}: {msg}")
}

/// Locates the `p3c` binary that hosts the worker subcommand.
///
/// `P3C_WORKER_BIN` overrides; otherwise the sibling of the current
/// executable (test binaries live one directory down, in `deps/`, so
/// that component is popped).
fn worker_binary() -> Result<PathBuf, BackendError> {
    if let Ok(path) = std::env::var("P3C_WORKER_BIN") {
        if !path.is_empty() {
            return Ok(PathBuf::from(path));
        }
    }
    let exe =
        std::env::current_exe().map_err(|e| BackendError::Spawn(format!("current_exe: {e}")))?;
    let mut dir = exe
        .parent()
        .map(PathBuf::from)
        .ok_or_else(|| BackendError::Spawn("executable has no parent dir".to_string()))?;
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    let candidate = dir.join(format!("p3c{}", std::env::consts::EXE_SUFFIX));
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(BackendError::Spawn(format!(
            "worker binary not found at {} (build the p3c-cli crate or set P3C_WORKER_BIN)",
            candidate.display()
        )))
    }
}

/// Spawns one worker subprocess and completes its `HELLO` handshake.
fn spawn_worker(
    listener: &TcpListener,
    binary: &PathBuf,
    addr: &str,
    id: usize,
) -> Result<WorkerConn, BackendError> {
    let mut child = Command::new(binary)
        .args(["worker", "--connect", addr, "--id", &id.to_string()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| BackendError::Spawn(format!("spawn {}: {e}", binary.display())))?;

    // Poll-accept so a worker that dies before dialing back fails the
    // spawn instead of wedging the master.
    listener
        .set_nonblocking(true)
        .map_err(|e| BackendError::Spawn(format!("listener nonblocking: {e}")))?;
    // audit: time-ok — connection deadline; bounds a handshake, never data.
    let deadline = Instant::now() + CONNECT_TIMEOUT;
    let stream = loop {
        match listener.accept() {
            Ok((stream, _)) => break stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(BackendError::Spawn(format!(
                        "worker {id} exited before connecting ({status})"
                    )));
                }
                // audit: time-ok — as above.
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    return Err(BackendError::Spawn(format!(
                        "worker {id} did not connect within {CONNECT_TIMEOUT:?}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = child.kill();
                return Err(BackendError::Spawn(format!("accept: {e}")));
            }
        }
    };
    let _ = listener.set_nonblocking(false);
    stream
        .set_nonblocking(false)
        .and_then(|_| stream.set_read_timeout(Some(READ_TIMEOUT)))
        .and_then(|_| stream.set_nodelay(true))
        .map_err(|e| BackendError::Spawn(format!("configure worker socket: {e}")))?;

    let mut stream = stream;
    match read_frame(&mut stream) {
        Ok((OP_HELLO, body)) => {
            let mut r = WireReader::new(&body);
            match r.u64() {
                Ok(hello_id) if hello_id == id as u64 => Ok(WorkerConn { child, stream }),
                Ok(hello_id) => Err(BackendError::Protocol(format!(
                    "worker handshake id mismatch: expected {id}, got {hello_id}"
                ))),
                Err(e) => Err(BackendError::Protocol(format!("short HELLO: {e}"))),
            }
        }
        Ok((op, _)) => Err(BackendError::Protocol(format!(
            "expected HELLO, got opcode {op}"
        ))),
        Err(e) => {
            let _ = child.kill();
            Err(BackendError::Spawn(format!("worker {id} handshake: {e}")))
        }
    }
}

/// Reaps a child, escalating to SIGKILL if it lingers.
fn wait_or_kill(child: &mut Child) {
    // audit: time-ok — shutdown grace period; bounds teardown only.
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            // audit: time-ok — as above.
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return;
            }
        }
    }
}
