//! Named, materialized datasets shared between the jobs of a DAG.
//!
//! A [`DatasetStore`] is the "distributed file system + block cache" of
//! the DAG scheduler ([`crate::dag`]): every job node reads its inputs
//! from the store and materializes its outputs back into it, so shared
//! inputs (e.g. the normalized row set) are loaded **once per pipeline**
//! instead of once per job. The store is in-memory first; under a byte
//! budget it evicts least-recently-used entries, *spilling* entries that
//! carry a codec to the [`crate::BlockStore`] "HDFS-lite" and *dropping*
//! entries marked recomputable (lineage re-executes their producer on
//! the next read — Spark's RDD cache semantics).
//!
//! Spilling comes in two shapes:
//!
//! * **Whole-buffer** ([`DatasetCodec`], [`DatasetStore::put_spillable`])
//!   — one opaque encoded file; a reload decodes everything.
//! * **Segmented** ([`SegmentedCodec`], [`DatasetStore::put_segmented`])
//!   — a small header plus one independently-encoded file per segment
//!   (for a row block: per attribute column). A projection-aware read
//!   ([`DatasetStore::get_columns`]) decodes *only the requested
//!   segments* into a view, caches the decoded columns for later calls,
//!   and a plain [`DatasetStore::get`] upgrades to the full value on
//!   demand, reusing whatever columns are already cached. Per-segment
//!   traffic is metered (`segment_reads`, `segment_bytes_read`,
//!   `bytes_saved_by_projection` in [`DatasetStoreStats`]) so the DAG
//!   metrics can show what projection pushdown saved.

use crate::blockstore::BlockStore;
use crate::engine::MrError;
use crate::sync::{rank, RankedMutex};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

/// A typed, named reference to a dataset in a [`DatasetStore`].
///
/// Handles are cheap to clone and carry the element type as a phantom,
/// so graph wiring stays type-checked while the store itself is
/// type-erased.
pub struct DatasetHandle<T> {
    name: Arc<str>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> DatasetHandle<T> {
    /// Creates a handle for the dataset of the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: Arc::from(name.into()),
            _marker: PhantomData,
        }
    }

    /// The dataset name — the store's key and the spill file stem.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<T> Clone for DatasetHandle<T> {
    fn clone(&self) -> Self {
        Self {
            name: Arc::clone(&self.name),
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for DatasetHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DatasetHandle({})", self.name)
    }
}

/// Serialization functions that let the store spill a dataset to the
/// block store as one opaque file and load it back. Plain function
/// pointers: codecs must not capture state, which keeps spilled bytes
/// self-describing.
pub struct DatasetCodec<T> {
    /// Encodes the whole value into one buffer.
    pub encode: fn(&T) -> Vec<u8>,
    /// Decodes a buffer written by `encode` back into the value.
    pub decode: fn(&[u8]) -> T,
}

/// Decoded `(segment index, segment)` pairs handed to a
/// [`SegmentedCodec`]'s `assemble_view`, in ascending index order.
pub type SegmentCols<C> = Vec<(usize, Arc<C>)>;

/// Serialization functions for the *segmented* spill format: the value
/// splits into a small header plus independently-encoded segments (for
/// a row block: one per attribute column), so a projection-aware reload
/// can decode only the segments a job scans.
///
/// Type parameters: `T` is the stored value, `C` one decoded segment
/// (e.g. a column `Vec<f64>`), `V` the projected view assembled from a
/// subset of segments. Like [`DatasetCodec`], all functions are
/// capture-free function pointers.
pub struct SegmentedCodec<T, C, V> {
    /// Number of independently-encoded segments of a value.
    pub num_segments: fn(&T) -> usize,
    /// Encodes the small shape header written alongside the segments.
    pub encode_header: fn(&T) -> Vec<u8>,
    /// Encodes segment `j` as a standalone buffer.
    pub encode_segment: fn(&T, usize) -> Vec<u8>,
    /// Decodes segment `j` (`(segment bytes, j, header bytes)`) back
    /// into a column.
    pub decode_segment: fn(&[u8], usize, &[u8]) -> C,
    /// Builds the projected view from the header and the decoded
    /// `(segment index, column)` pairs a caller requested.
    pub assemble_view: fn(&[u8], SegmentCols<C>) -> V,
    /// Reassembles the full value from the header and *all* segments in
    /// index order — the spill-reload "upgrade" path. Must reproduce the
    /// encoded value exactly (the DAG byte-identity guarantee).
    pub assemble_full: fn(&[u8], Vec<Arc<C>>) -> T,
    /// Projects the requested segments out of an in-memory value — the
    /// cache-hit counterpart of decoding spilled segments. Must yield a
    /// view indistinguishable from the spilled path's.
    pub project: fn(&T, &[usize]) -> V,
}

/// Takes a finished dataset out of the store after a DAG run, mapping a
/// missing or mistyped entry onto [`MrError::Dag`] for drivers whose
/// public result type is `Result<_, MrError>`.
pub fn take_dataset<T: Clone + Send + Sync + 'static>(
    store: &DatasetStore,
    handle: &DatasetHandle<T>,
) -> Result<T, MrError> {
    store
        .get(handle)
        .map(|v| (*v).clone())
        .map_err(|e| MrError::Dag {
            node: "<driver>".to_string(),
            message: e.to_string(),
        })
}

/// Built-in codec for the row-set dataset shared by the pipelines.
pub fn rows_codec() -> DatasetCodec<Vec<Vec<f64>>> {
    // The codec's `fn(&T)` shape forces `&Vec`, not `&[_]`.
    #[allow(clippy::ptr_arg)]
    fn encode(rows: &Vec<Vec<f64>>) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for row in rows {
            out.extend_from_slice(&(row.len() as u64).to_le_bytes());
            for v in row {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }
    fn decode(bytes: &[u8]) -> Vec<Vec<f64>> {
        let mut at = 0usize;
        let mut take8 = |buf: &[u8]| -> [u8; 8] {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[at..at + 8]);
            at += 8;
            b
        };
        let n = u64::from_le_bytes(take8(bytes)) as usize;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let d = u64::from_le_bytes(take8(bytes)) as usize;
            let mut row = Vec::with_capacity(d);
            for _ in 0..d {
                row.push(f64::from_le_bytes(take8(bytes)));
            }
            rows.push(row);
        }
        rows
    }
    DatasetCodec { encode, decode }
}

/// Store access errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// No dataset of this name is materialized (in memory or spilled).
    Missing {
        /// The dataset name that was requested.
        name: String,
    },
    /// The dataset exists but was requested with the wrong element type.
    WrongType {
        /// The dataset name that was requested.
        name: String,
    },
    /// A projected read was attempted on a dataset that did not register
    /// a [`SegmentedCodec`].
    NotSegmented {
        /// The dataset name that was requested.
        name: String,
    },
    /// A projected read asked for a column the dataset does not have.
    ColumnOutOfRange {
        /// The dataset name that was requested.
        name: String,
        /// The out-of-range column index.
        column: usize,
        /// How many column segments the dataset actually has.
        segments: usize,
    },
    /// Store bookkeeping for this entry is inconsistent (e.g. a spilled
    /// entry with no codec or no cached header). Indicates a store bug,
    /// reported as an error instead of a worker panic.
    Corrupt {
        /// The dataset whose entry is inconsistent.
        name: String,
        /// What was expected and missing.
        detail: &'static str,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Missing { name } => write!(f, "dataset '{name}' is not materialized"),
            DatasetError::WrongType { name } => {
                write!(f, "dataset '{name}' requested with the wrong type")
            }
            DatasetError::NotSegmented { name } => {
                write!(
                    f,
                    "dataset '{name}' has no segmented codec for projected reads"
                )
            }
            DatasetError::ColumnOutOfRange {
                name,
                column,
                segments,
            } => {
                write!(
                    f,
                    "dataset '{name}': column {column} out of range ({segments} segments)"
                )
            }
            DatasetError::Corrupt { name, detail } => {
                write!(f, "dataset '{name}': inconsistent store entry — {detail}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// Counters describing cache behaviour since the store was created.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStoreStats {
    /// `get`/`get_columns` calls served from memory (including projected
    /// reads fully covered by the partial-column cache).
    pub hits: u64,
    /// `get`/`get_columns` calls that had to touch the block store or
    /// found nothing (missing or spilled).
    pub misses: u64,
    /// Datasets written to the block store by eviction.
    pub spills: u64,
    /// Encoded bytes written by spills (cumulative — never decremented).
    pub spill_bytes: u64,
    /// Encoded bytes of spill files currently live in the block store:
    /// incremented at spill time, decremented when a spilled entry is
    /// overwritten, removed or dropped.
    pub live_spill_bytes: u64,
    /// In-memory (pre-encoding) bytes of the datasets spilled so far —
    /// `spill_bytes / spill_raw_bytes` is the aggregate compression
    /// ratio of the spill codecs.
    pub spill_raw_bytes: u64,
    /// Spilled datasets decoded back into memory on demand.
    pub spill_loads: u64,
    /// Column segments read from the block store by projected reads and
    /// segmented full reloads.
    pub segment_reads: u64,
    /// Encoded bytes of those segment reads.
    pub segment_bytes_read: u64,
    /// Encoded bytes that projected reads did *not* have to fetch
    /// (total segment bytes of the dataset minus the bytes each
    /// `get_columns` call actually read).
    pub bytes_saved_by_projection: u64,
    /// Datasets removed from memory by the budget (spilled or dropped;
    /// clearing a partial-column cache counts too).
    pub evictions: u64,
}

type AnyArc = Arc<dyn Any + Send + Sync>;
type EncodeFn = Box<dyn Fn(&AnyArc) -> Vec<u8> + Send + Sync>;
type DecodeFn = Box<dyn Fn(&[u8]) -> AnyArc + Send + Sync>;
type SegCountFn = Box<dyn Fn(&AnyArc) -> usize + Send + Sync>;
type SegEncodeFn = Box<dyn Fn(&AnyArc, usize) -> Vec<u8> + Send + Sync>;
type SegDecodeFn = Box<dyn Fn(&[u8], usize, &[u8]) -> AnyArc + Send + Sync>;
type AssembleViewFn = Box<dyn Fn(&[u8], Vec<(usize, AnyArc)>) -> AnyArc + Send + Sync>;
type AssembleFullFn = Box<dyn Fn(&[u8], Vec<AnyArc>) -> AnyArc + Send + Sync>;
type ProjectFn = Box<dyn Fn(&AnyArc, &[usize]) -> AnyArc + Send + Sync>;

struct ErasedCodec {
    encode: EncodeFn,
    decode: DecodeFn,
}

struct ErasedSegCodec {
    num_segments: SegCountFn,
    encode_header: EncodeFn,
    encode_segment: SegEncodeFn,
    decode_segment: SegDecodeFn,
    assemble_view: AssembleViewFn,
    assemble_full: AssembleFullFn,
    project: ProjectFn,
}

enum Codec {
    Whole(ErasedCodec),
    Segmented(ErasedSegCodec),
}

struct Entry {
    /// In-memory value; `None` when evicted (spilled or dropped).
    value: Option<AnyArc>,
    /// Caller-declared size estimate, used by the budget.
    bytes: usize,
    /// Pinned entries are never evicted.
    pins: usize,
    /// LRU clock value of the last touch.
    seq: u64,
    /// Lineage can rebuild this dataset by re-running its producer, so
    /// the budget may drop it without spilling.
    recomputable: bool,
    codec: Option<Codec>,
    /// The block store holds an up-to-date encoded copy.
    spilled: bool,
    /// Total encoded bytes of the live spill (header + segments, or the
    /// whole-buffer file); 0 when not spilled.
    spilled_total: usize,
    /// Encoded size of each segment, recorded at spill time (segmented
    /// entries only).
    seg_sizes: Vec<usize>,
    /// Header bytes, cached at spill time so projected reads don't
    /// re-fetch the (tiny) header file.
    header: Option<Vec<u8>>,
    /// Decoded columns of a spilled segmented entry, kept for reuse by
    /// later projected reads and the full-reload upgrade.
    partial: BTreeMap<usize, AnyArc>,
    /// Estimated in-memory bytes of `partial` (counted in `mem_bytes`).
    partial_bytes: usize,
}

struct Inner {
    entries: BTreeMap<String, Entry>,
    mem_bytes: usize,
    clock: u64,
    stats: DatasetStoreStats,
}

/// What `enforce_budget` decided to write out for a victim, computed
/// while the entry is immutably borrowed and applied afterwards.
enum SpillPlan {
    Nothing,
    Whole(Vec<u8>),
    Segmented { header: Vec<u8>, segs: Vec<Vec<u8>> },
}

/// The materialized-dataset store shared by all nodes of a DAG run.
pub struct DatasetStore {
    blockstore: Arc<BlockStore>,
    budget: Option<usize>,
    inner: RankedMutex<Inner>,
}

impl Default for DatasetStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DatasetStore {
    /// Unbounded in-memory store with a private spill block store.
    pub fn new() -> Self {
        Self::with_blockstore(Arc::new(BlockStore::new(1 << 20, 1)), None)
    }

    /// Store that evicts down to `budget` bytes of in-memory datasets.
    pub fn with_budget(budget: usize) -> Self {
        Self::with_blockstore(Arc::new(BlockStore::new(1 << 20, 1)), Some(budget))
    }

    /// Store spilling to an existing block store, optionally budgeted.
    pub fn with_blockstore(blockstore: Arc<BlockStore>, budget: Option<usize>) -> Self {
        Self {
            blockstore,
            budget,
            inner: RankedMutex::new(
                rank::DATASET_STORE,
                "dataset.inner",
                Inner {
                    entries: BTreeMap::new(),
                    mem_bytes: 0,
                    clock: 0,
                    stats: DatasetStoreStats::default(),
                },
            ),
        }
    }

    /// The block store spills land in.
    pub fn blockstore(&self) -> &Arc<BlockStore> {
        &self.blockstore
    }

    /// Materializes a dataset. Overwrites any previous version (a
    /// re-executed producer publishes fresh output).
    pub fn put<T: Send + Sync + 'static>(&self, handle: &DatasetHandle<T>, value: T, bytes: usize) {
        self.insert(handle.name(), Arc::new(value), bytes, false, None);
    }

    /// Materializes a dataset the budget may *drop* from memory: its DAG
    /// producer can re-create it through lineage.
    pub fn put_recomputable<T: Send + Sync + 'static>(
        &self,
        handle: &DatasetHandle<T>,
        value: T,
        bytes: usize,
    ) {
        self.insert(handle.name(), Arc::new(value), bytes, true, None);
    }

    /// Materializes a dataset the budget may *spill* to the block store
    /// as one whole-buffer file.
    pub fn put_spillable<T: Send + Sync + 'static>(
        &self,
        handle: &DatasetHandle<T>,
        value: T,
        bytes: usize,
        codec: DatasetCodec<T>,
    ) {
        let DatasetCodec { encode, decode } = codec;
        let erased = ErasedCodec {
            encode: Box::new(move |any: &AnyArc| {
                // audit: panic-ok — the value and this codec are
                // installed by the same put call, so the downcast
                // cannot fail; the closure signature has no Result.
                let typed = any
                    .clone()
                    .downcast::<T>()
                    .expect("codec type matches entry");
                encode(&typed)
            }),
            decode: Box::new(move |bytes: &[u8]| Arc::new(decode(bytes)) as AnyArc),
        };
        self.insert(
            handle.name(),
            Arc::new(value),
            bytes,
            false,
            Some(Codec::Whole(erased)),
        );
    }

    /// Materializes a dataset the budget may spill in *segmented*
    /// columnar form, enabling projected reads via
    /// [`DatasetStore::get_columns`].
    pub fn put_segmented<T, C, V>(
        &self,
        handle: &DatasetHandle<T>,
        value: T,
        bytes: usize,
        codec: SegmentedCodec<T, C, V>,
    ) where
        T: Send + Sync + 'static,
        C: Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        fn typed<T: Send + Sync + 'static>(any: &AnyArc) -> Arc<T> {
            // audit: panic-ok — value and codec are installed together
            // by put_segmented, so the downcast cannot fail; the erased
            // codec signatures have no Result.
            any.clone()
                .downcast::<T>()
                .expect("codec type matches entry")
        }
        let SegmentedCodec {
            num_segments,
            encode_header,
            encode_segment,
            decode_segment,
            assemble_view,
            assemble_full,
            project,
        } = codec;
        let erased = ErasedSegCodec {
            num_segments: Box::new(move |any| num_segments(&typed::<T>(any))),
            encode_header: Box::new(move |any| encode_header(&typed::<T>(any))),
            encode_segment: Box::new(move |any, j| encode_segment(&typed::<T>(any), j)),
            decode_segment: Box::new(move |bytes, j, header| {
                Arc::new(decode_segment(bytes, j, header)) as AnyArc
            }),
            assemble_view: Box::new(move |header, cols| {
                let cols = cols
                    .into_iter()
                    // audit: panic-ok — segments were decoded by this
                    // same codec's decode_segment, so C always matches.
                    .map(|(j, c)| (j, c.downcast::<C>().expect("segment type matches codec")))
                    .collect();
                Arc::new(assemble_view(header, cols)) as AnyArc
            }),
            assemble_full: Box::new(move |header, cols| {
                let cols = cols
                    .into_iter()
                    // audit: panic-ok — segments were decoded by this
                    // same codec's decode_segment, so C always matches.
                    .map(|c| c.downcast::<C>().expect("segment type matches codec"))
                    .collect();
                Arc::new(assemble_full(header, cols)) as AnyArc
            }),
            project: Box::new(move |any, attrs| {
                Arc::new(project(&typed::<T>(any), attrs)) as AnyArc
            }),
        };
        self.insert(
            handle.name(),
            Arc::new(value),
            bytes,
            false,
            Some(Codec::Segmented(erased)),
        );
    }

    fn insert(
        &self,
        name: &str,
        value: AnyArc,
        bytes: usize,
        recomputable: bool,
        codec: Option<Codec>,
    ) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let seq = inner.clock;
        if let Some(old) = inner.entries.remove(name) {
            if old.value.is_some() {
                inner.mem_bytes -= old.bytes;
            }
            inner.mem_bytes -= old.partial_bytes;
            if old.spilled {
                self.delete_spill(name);
                inner.stats.live_spill_bytes = inner
                    .stats
                    .live_spill_bytes
                    .saturating_sub(old.spilled_total as u64);
            }
        }
        inner.entries.insert(
            name.to_string(),
            Entry {
                value: Some(value),
                bytes,
                pins: 0,
                seq,
                recomputable,
                codec,
                spilled: false,
                spilled_total: 0,
                seg_sizes: Vec::new(),
                header: None,
                partial: BTreeMap::new(),
                partial_bytes: 0,
            },
        );
        inner.mem_bytes += bytes;
        self.enforce_budget(&mut inner, name);
    }

    /// Fetches a dataset, loading it back from spill if necessary. A
    /// segmented spill reload reuses columns already decoded by earlier
    /// [`DatasetStore::get_columns`] calls and reads only the rest.
    pub fn get<T: Send + Sync + 'static>(
        &self,
        handle: &DatasetHandle<T>,
    ) -> Result<Arc<T>, DatasetError> {
        let any = self.get_any(handle.name())?;
        any.downcast::<T>().map_err(|_| DatasetError::WrongType {
            name: handle.name().to_string(),
        })
    }

    fn get_any(&self, name: &str) -> Result<AnyArc, DatasetError> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        inner.clock += 1;
        let seq = inner.clock;
        let missing = || DatasetError::Missing {
            name: name.to_string(),
        };
        let Some(entry) = inner.entries.get_mut(name) else {
            inner.stats.misses += 1;
            return Err(missing());
        };
        entry.seq = seq;
        if let Some(value) = &entry.value {
            let value = Arc::clone(value);
            inner.stats.hits += 1;
            return Ok(value);
        }
        inner.stats.misses += 1;
        if !entry.spilled {
            return Err(missing());
        }
        // Reload the spilled copy. The decode borrows the codec (a field
        // of the entry, itself borrowed from `inner.entries`), so all
        // shared-state bookkeeping is deferred until the borrow ends.
        let mut seg_reads = 0u64;
        let mut seg_bytes = 0u64;
        let decoded = {
            let Entry {
                codec,
                partial,
                header,
                seg_sizes,
                ..
            } = entry;
            let Some(codec) = codec.as_ref() else {
                return Err(DatasetError::Corrupt {
                    name: name.to_string(),
                    detail: "spilled entry has no codec to decode with",
                });
            };
            match codec {
                Codec::Whole(codec) => {
                    let bytes = self
                        .blockstore
                        .read(&spill_file(name))
                        .ok_or_else(missing)?;
                    (codec.decode)(&bytes)
                }
                Codec::Segmented(codec) => {
                    let Some(header) = header.as_ref() else {
                        return Err(DatasetError::Corrupt {
                            name: name.to_string(),
                            detail: "segmented spill is missing its cached header",
                        });
                    };
                    let d = seg_sizes.len();
                    let mut cols = Vec::with_capacity(d);
                    for j in 0..d {
                        if let Some(col) = partial.get(&j) {
                            cols.push(Arc::clone(col));
                        } else {
                            let bytes = self
                                .blockstore
                                .read(&seg_file(name, j))
                                .ok_or_else(missing)?;
                            seg_reads += 1;
                            seg_bytes += bytes.len() as u64;
                            cols.push((codec.decode_segment)(&bytes, j, header));
                        }
                    }
                    (codec.assemble_full)(header, cols)
                }
            }
        };
        entry.value = Some(Arc::clone(&decoded));
        entry.partial.clear();
        let freed = std::mem::take(&mut entry.partial_bytes);
        let entry_bytes = entry.bytes;
        inner.stats.spill_loads += 1;
        inner.stats.segment_reads += seg_reads;
        inner.stats.segment_bytes_read += seg_bytes;
        inner.mem_bytes += entry_bytes;
        inner.mem_bytes -= freed;
        self.enforce_budget(inner, name);
        Ok(decoded)
    }

    /// Fetches a projected view of a segmented dataset, decoding only
    /// the requested columns when the dataset is spilled.
    ///
    /// `cols` must be distinct, in-range segment indices. `V` is the
    /// codec's view type (for row blocks: `ColumnSet`). In-memory
    /// entries are projected directly (a hit); spilled entries read only
    /// the segments not already in the partial-column cache, and a call
    /// fully covered by that cache counts as a hit too.
    pub fn get_columns<T, V>(
        &self,
        handle: &DatasetHandle<T>,
        cols: &[usize],
    ) -> Result<Arc<V>, DatasetError>
    where
        T: Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        let any = self.get_columns_any(handle.name(), cols)?;
        any.downcast::<V>().map_err(|_| DatasetError::WrongType {
            name: handle.name().to_string(),
        })
    }

    fn get_columns_any(&self, name: &str, cols: &[usize]) -> Result<AnyArc, DatasetError> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        inner.clock += 1;
        let seq = inner.clock;
        let missing = || DatasetError::Missing {
            name: name.to_string(),
        };
        let Some(entry) = inner.entries.get_mut(name) else {
            inner.stats.misses += 1;
            return Err(missing());
        };
        entry.seq = seq;
        if !matches!(entry.codec, Some(Codec::Segmented(_))) {
            return Err(DatasetError::NotSegmented {
                name: name.to_string(),
            });
        }
        // `seg_sizes` is only recorded at spill time, so the range check
        // applies to spilled entries; in-memory projection delegates to
        // the codec, which sees the live value's true segment count.
        if entry.spilled {
            if let Some(&column) = cols.iter().find(|&&j| j >= entry.seg_sizes.len()) {
                return Err(DatasetError::ColumnOutOfRange {
                    name: name.to_string(),
                    column,
                    segments: entry.seg_sizes.len(),
                });
            }
        }
        if let Some(value) = entry.value.as_ref() {
            // The `matches!` check above guarantees a segmented codec;
            // re-match instead of unwrapping so a bookkeeping bug
            // surfaces as an error, not a worker panic.
            let Some(Codec::Segmented(codec)) = entry.codec.as_ref() else {
                return Err(DatasetError::Corrupt {
                    name: name.to_string(),
                    detail: "segmented codec vanished between checks",
                });
            };
            let view = (codec.project)(value, cols);
            inner.stats.hits += 1;
            return Ok(view);
        }
        if !entry.spilled {
            inner.stats.misses += 1;
            return Err(missing());
        }
        // Spilled: decode the requested segments, reusing cached columns.
        let mut fresh: Vec<(usize, AnyArc)> = Vec::new();
        let mut read_bytes = 0u64;
        let view = {
            let Entry {
                codec,
                partial,
                header,
                ..
            } = entry;
            let Some(Codec::Segmented(codec)) = codec.as_ref() else {
                return Err(DatasetError::Corrupt {
                    name: name.to_string(),
                    detail: "segmented codec vanished between checks",
                });
            };
            let Some(header) = header.as_ref() else {
                return Err(DatasetError::Corrupt {
                    name: name.to_string(),
                    detail: "segmented spill is missing its cached header",
                });
            };
            let mut pairs = Vec::with_capacity(cols.len());
            // Column range was validated against `seg_sizes` up front.
            for &j in cols {
                if let Some(col) = partial.get(&j) {
                    pairs.push((j, Arc::clone(col)));
                } else {
                    let bytes = self
                        .blockstore
                        .read(&seg_file(name, j))
                        .ok_or_else(missing)?;
                    read_bytes += bytes.len() as u64;
                    let col = (codec.decode_segment)(&bytes, j, header);
                    fresh.push((j, Arc::clone(&col)));
                    pairs.push((j, col));
                }
            }
            (codec.assemble_view)(header, pairs)
        };
        let read_count = fresh.len() as u64;
        let num_segments = entry.seg_sizes.len();
        let per_col = entry.bytes / num_segments.max(1);
        for (j, col) in fresh {
            entry.partial.insert(j, col);
            entry.partial_bytes += per_col;
        }
        let total_seg_bytes: u64 = entry.seg_sizes.iter().map(|&s| s as u64).sum();
        if read_count == 0 {
            inner.stats.hits += 1;
        } else {
            inner.stats.misses += 1;
            inner.stats.segment_reads += read_count;
            inner.stats.segment_bytes_read += read_bytes;
            inner.stats.bytes_saved_by_projection += total_seg_bytes.saturating_sub(read_bytes);
            inner.mem_bytes += per_col * read_count as usize;
        }
        self.enforce_budget(inner, name);
        Ok(view)
    }

    /// Whether the dataset is materialized (in memory or spilled).
    pub fn has(&self, name: &str) -> bool {
        let inner = self.inner.lock();
        inner
            .entries
            .get(name)
            .is_some_and(|e| e.value.is_some() || e.spilled)
    }

    /// Pins a dataset against eviction while a node consumes it.
    pub fn pin(&self, name: &str) {
        if let Some(e) = self.inner.lock().entries.get_mut(name) {
            e.pins += 1;
        }
    }

    /// Releases one [`DatasetStore::pin`].
    pub fn unpin(&self, name: &str) {
        if let Some(e) = self.inner.lock().entries.get_mut(name) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Removes a dataset everywhere (memory and spill).
    pub fn remove(&self, name: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.remove(name) {
            Some(e) => {
                if e.value.is_some() {
                    inner.mem_bytes -= e.bytes;
                }
                inner.mem_bytes -= e.partial_bytes;
                if e.spilled {
                    self.delete_spill(name);
                    inner.stats.live_spill_bytes = inner
                        .stats
                        .live_spill_bytes
                        .saturating_sub(e.spilled_total as u64);
                }
                true
            }
            None => false,
        }
    }

    /// Drops the in-memory copy *and* any spilled copy, but keeps the
    /// entry registered — the next `get` reports it missing. This models
    /// losing a cached partition; the DAG scheduler's lineage recovery
    /// re-executes the producer to rebuild it.
    pub fn drop_cached(&self, name: &str) -> bool {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        match inner.entries.get_mut(name) {
            Some(e) => {
                if e.value.take().is_some() {
                    inner.mem_bytes -= e.bytes;
                }
                e.partial.clear();
                inner.mem_bytes -= std::mem::take(&mut e.partial_bytes);
                if e.spilled {
                    e.spilled = false;
                    let dead = std::mem::take(&mut e.spilled_total);
                    e.seg_sizes.clear();
                    e.header = None;
                    self.delete_spill(name);
                    inner.stats.live_spill_bytes =
                        inner.stats.live_spill_bytes.saturating_sub(dead as u64);
                }
                true
            }
            None => false,
        }
    }

    /// Bytes of datasets currently held in memory (partial-column caches
    /// included).
    pub fn mem_bytes(&self) -> usize {
        self.inner.lock().mem_bytes
    }

    /// Names of all registered datasets.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().entries.keys().cloned().collect()
    }

    /// A snapshot of the cache/spill counters.
    pub fn stats(&self) -> DatasetStoreStats {
        self.inner.lock().stats
    }

    /// Deletes a dataset's spill artifacts in either layout (the
    /// whole-buffer file and the segmented `<name>/` directory).
    fn delete_spill(&self, name: &str) {
        self.blockstore.delete(&spill_file(name));
        self.blockstore.delete_prefix(&spill_dir(name));
    }

    /// Evicts LRU entries until the budget holds. `exempt` (the entry
    /// just inserted or reloaded) is never evicted, so a single oversized
    /// dataset still materializes. Victims are in-memory entries that can
    /// be spilled or recomputed, plus partial-column caches of spilled
    /// entries (clearing one loses nothing — the segments stay on disk).
    fn enforce_budget(&self, inner: &mut Inner, exempt: &str) {
        let Some(budget) = self.budget else { return };
        while inner.mem_bytes > budget {
            let victim = inner
                .entries
                .iter()
                .filter(|(name, e)| {
                    name.as_str() != exempt
                        && e.pins == 0
                        && ((e.value.is_some() && (e.codec.is_some() || e.recomputable))
                            || (e.value.is_none() && e.partial_bytes > 0))
                })
                .min_by_key(|(_, e)| e.seq)
                .map(|(name, _)| name.clone());
            let Some(name) = victim else { break };
            // Split the Inner borrow so the victim entry can stay
            // borrowed across stats/accounting updates — one lookup for
            // the whole eviction instead of expect()-laden re-lookups.
            let Inner {
                entries,
                mem_bytes,
                stats,
                ..
            } = &mut *inner;
            let Some(entry) = entries.get_mut(&name) else {
                // The victim name was selected from this same map under
                // the same lock, so this cannot happen; stop evicting
                // rather than panic a worker if it ever does.
                break;
            };
            let plan = {
                let value = if entry.spilled { &None } else { &entry.value };
                match (value, &entry.codec) {
                    (Some(value), Some(Codec::Whole(codec))) => {
                        SpillPlan::Whole((codec.encode)(value))
                    }
                    (Some(value), Some(Codec::Segmented(codec))) => {
                        let d = (codec.num_segments)(value);
                        SpillPlan::Segmented {
                            header: (codec.encode_header)(value),
                            segs: (0..d).map(|j| (codec.encode_segment)(value, j)).collect(),
                        }
                    }
                    // No codec (recomputable) or already spilled: drop
                    // the in-memory copy outright.
                    _ => SpillPlan::Nothing,
                }
            };
            match plan {
                SpillPlan::Nothing => {}
                SpillPlan::Whole(encoded) => {
                    let len = encoded.len();
                    self.blockstore.write(&spill_file(&name), &encoded);
                    entry.spilled = true;
                    entry.spilled_total = len;
                    stats.spills += 1;
                    stats.spill_bytes += len as u64;
                    stats.live_spill_bytes += len as u64;
                    stats.spill_raw_bytes += entry.bytes as u64;
                }
                SpillPlan::Segmented { header, segs } => {
                    let seg_sizes: Vec<usize> = segs.iter().map(Vec::len).collect();
                    let total = header.len() + seg_sizes.iter().sum::<usize>();
                    let mut files = Vec::with_capacity(segs.len() + 1);
                    files.push((header_file(&name), header.clone()));
                    for (j, seg) in segs.into_iter().enumerate() {
                        files.push((seg_file(&name, j), seg));
                    }
                    self.blockstore.write_many(&files);
                    entry.spilled = true;
                    entry.spilled_total = total;
                    entry.seg_sizes = seg_sizes;
                    entry.header = Some(header);
                    stats.spills += 1;
                    stats.spill_bytes += total as u64;
                    stats.live_spill_bytes += total as u64;
                    stats.spill_raw_bytes += entry.bytes as u64;
                }
            }
            if entry.value.take().is_some() {
                *mem_bytes -= entry.bytes;
            } else {
                // Partial-only victim: clear the decoded-column cache.
                entry.partial.clear();
                *mem_bytes -= std::mem::take(&mut entry.partial_bytes);
            }
            stats.evictions += 1;
        }
    }
}

fn spill_file(name: &str) -> String {
    format!("dataset/{name}")
}

/// Directory prefix of a segmented spill. The trailing slash keeps
/// `delete_prefix` from clipping sibling datasets whose names share a
/// prefix (`rows` vs `rows2`).
fn spill_dir(name: &str) -> String {
    format!("dataset/{name}/")
}

fn header_file(name: &str) -> String {
    format!("dataset/{name}/header")
}

fn seg_file(name: &str, j: usize) -> String {
    format!("dataset/{name}/seg-{j}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(name: &str) -> DatasetHandle<Vec<Vec<f64>>> {
        DatasetHandle::new(name)
    }

    fn rows(k: usize) -> Vec<Vec<f64>> {
        (0..4).map(|i| vec![i as f64 + k as f64, 0.5]).collect()
    }

    /// View type of the test segmented codec: `(attr, column)` pairs.
    type ColsView = Vec<(usize, Vec<f64>)>;

    /// A toy segmented codec over row vectors: one raw-LE segment per
    /// column, an `(n, d)` header.
    fn seg_codec() -> SegmentedCodec<Vec<Vec<f64>>, Vec<f64>, ColsView> {
        #[allow(clippy::ptr_arg)]
        fn header(rows: &Vec<Vec<f64>>) -> Vec<u8> {
            let d = rows.first().map_or(0, Vec::len);
            let mut out = (rows.len() as u64).to_le_bytes().to_vec();
            out.extend_from_slice(&(d as u64).to_le_bytes());
            out
        }
        #[allow(clippy::ptr_arg)]
        fn segment(rows: &Vec<Vec<f64>>, j: usize) -> Vec<u8> {
            rows.iter().flat_map(|r| r[j].to_le_bytes()).collect()
        }
        fn decode(bytes: &[u8], _j: usize, _header: &[u8]) -> Vec<f64> {
            bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        }
        SegmentedCodec {
            num_segments: |rows| rows.first().map_or(0, Vec::len),
            encode_header: header,
            encode_segment: segment,
            decode_segment: decode,
            assemble_view: |_h, cols| cols.into_iter().map(|(j, c)| (j, (*c).clone())).collect(),
            assemble_full: |h, cols| {
                let n = u64::from_le_bytes(h[..8].try_into().unwrap()) as usize;
                (0..n)
                    .map(|i| cols.iter().map(|c| c[i]).collect())
                    .collect()
            },
            project: |rows, attrs| {
                attrs
                    .iter()
                    .map(|&j| (j, rows.iter().map(|r| r[j]).collect()))
                    .collect()
            },
        }
    }

    #[test]
    fn put_get_roundtrip_and_hits() {
        let store = DatasetStore::new();
        store.put(&h("a"), rows(0), 64);
        let got = store.get(&h("a")).unwrap();
        assert_eq!(*got, rows(0));
        assert!(store.has("a"));
        assert!(!store.has("b"));
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn missing_and_wrong_type_error() {
        let store = DatasetStore::new();
        assert_eq!(
            store.get(&h("nope")).unwrap_err(),
            DatasetError::Missing {
                name: "nope".into()
            }
        );
        store.put(&h("a"), rows(0), 64);
        let wrong: DatasetHandle<Vec<u64>> = DatasetHandle::new("a");
        assert_eq!(
            store.get(&wrong).unwrap_err(),
            DatasetError::WrongType { name: "a".into() }
        );
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn budget_spills_lru_and_reloads() {
        let store = DatasetStore::with_budget(100);
        store.put_spillable(&h("old"), rows(1), 64, rows_codec());
        store.put_spillable(&h("new"), rows(2), 64, rows_codec());
        // 128 > 100: the LRU entry ("old") spills to the block store.
        let stats = store.stats();
        assert_eq!(stats.spills, 1);
        assert_eq!(stats.evictions, 1);
        assert!(stats.spill_bytes > 0);
        assert_eq!(stats.live_spill_bytes, stats.spill_bytes);
        assert_eq!(stats.spill_raw_bytes, 64);
        assert!(store.mem_bytes() <= 100);
        assert!(store.has("old"), "spilled datasets stay materialized");
        // Reading it back decodes the spilled copy (a miss + a load)...
        assert_eq!(*store.get(&h("old")).unwrap(), rows(1));
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.spill_loads, 1);
        // ...and pushes "new" out in turn (already-spilled page-out is
        // counted as an eviction, not a second spill of "old").
        assert!(store.mem_bytes() <= 100);
        assert_eq!(*store.get(&h("new")).unwrap(), rows(2));
    }

    #[test]
    fn budget_drops_recomputable_entries() {
        let store = DatasetStore::with_budget(100);
        store.put_recomputable(&h("derived"), rows(1), 64);
        store.put(&h("pinnedless"), rows(2), 64);
        // "derived" has no codec but is recomputable → dropped outright.
        assert_eq!(store.stats().spills, 0);
        assert_eq!(store.stats().evictions, 1);
        assert!(!store.has("derived"), "dropped datasets report missing");
        assert!(store.has("pinnedless"));
    }

    #[test]
    fn non_spillable_non_recomputable_entries_survive_budget() {
        let store = DatasetStore::with_budget(50);
        store.put(&h("a"), rows(1), 64);
        store.put(&h("b"), rows(2), 64);
        // Neither entry can be spilled or recomputed: the budget is
        // overshot rather than losing data.
        assert!(store.has("a") && store.has("b"));
        assert_eq!(store.stats().evictions, 0);
    }

    #[test]
    fn pinned_entries_are_not_evicted() {
        let store = DatasetStore::with_budget(100);
        store.put_spillable(&h("hot"), rows(1), 64, rows_codec());
        store.pin("hot");
        store.put_spillable(&h("cold"), rows(2), 64, rows_codec());
        // "hot" is older but pinned; nothing else is evictable ("cold"
        // is exempt as the fresh insert), so memory stays over budget.
        assert_eq!(store.stats().evictions, 0);
        store.unpin("hot");
        store.put_spillable(&h("third"), rows(3), 64, rows_codec());
        assert!(store.stats().evictions > 0);
    }

    #[test]
    fn drop_cached_loses_the_dataset() {
        let store = DatasetStore::new();
        store.put(&h("a"), rows(0), 64);
        assert!(store.drop_cached("a"));
        assert!(!store.has("a"));
        assert!(store.get(&h("a")).is_err());
        assert!(!store.drop_cached("ghost"));
    }

    #[test]
    fn overwrite_replaces_value_and_spill() {
        let store = DatasetStore::new();
        store.put(&h("a"), rows(1), 64);
        store.put(&h("a"), rows(9), 32);
        assert_eq!(*store.get(&h("a")).unwrap(), rows(9));
        assert_eq!(store.mem_bytes(), 32);
    }

    #[test]
    fn overwriting_a_spilled_entry_frees_its_live_spill_bytes() {
        // The regression this pins down: replacing an already-spilled
        // entry deletes the spill file but used to keep counting its
        // bytes as live.
        let store = DatasetStore::with_budget(100);
        store.put_spillable(&h("a"), rows(1), 64, rows_codec());
        store.put_spillable(&h("b"), rows(2), 64, rows_codec());
        let spilled = store.stats();
        assert!(spilled.live_spill_bytes > 0);
        // Overwrite the spilled "a" with a small in-memory version.
        store.put(&h("a"), rows(3), 8);
        let stats = store.stats();
        assert_eq!(stats.live_spill_bytes, 0, "dead spill bytes not freed");
        assert_eq!(
            stats.spill_bytes, spilled.spill_bytes,
            "cumulative spill volume must not decrease"
        );
        assert!(store.blockstore().read(&spill_file("a")).is_none());
        // remove() and drop_cached() free live bytes the same way.
        let store = DatasetStore::with_budget(100);
        store.put_spillable(&h("a"), rows(1), 64, rows_codec());
        store.put_spillable(&h("b"), rows(2), 64, rows_codec());
        assert!(store.stats().live_spill_bytes > 0);
        store.remove("a");
        assert_eq!(store.stats().live_spill_bytes, 0);
    }

    #[test]
    fn rows_codec_roundtrip() {
        let codec = rows_codec();
        let data = vec![vec![0.25, -1.5, 3.0], vec![], vec![42.0]];
        let encoded = (codec.encode)(&data);
        assert_eq!((codec.decode)(&encoded), data);
        let empty: Vec<Vec<f64>> = Vec::new();
        assert_eq!((codec.decode)(&(codec.encode)(&empty)), empty);
    }

    #[test]
    fn remove_deletes_everything() {
        let store = DatasetStore::with_budget(60);
        store.put_spillable(&h("a"), rows(1), 64, rows_codec());
        store.put_spillable(&h("b"), rows(2), 64, rows_codec());
        assert!(store.remove("a"));
        assert!(!store.has("a"));
        assert!(!store.remove("a"));
    }

    #[test]
    fn segmented_spill_reloads_byte_identically() {
        let store = DatasetStore::with_budget(100);
        store.put_segmented(&h("old"), rows(1), 64, seg_codec());
        store.put(&h("filler"), rows(2), 64);
        let stats = store.stats();
        assert_eq!(stats.spills, 1);
        assert!(stats.live_spill_bytes > 0);
        // Header + 2 column segments exist in the block store.
        assert!(store.blockstore().read("dataset/old/header").is_some());
        assert!(store.blockstore().read("dataset/old/seg-0").is_some());
        assert!(store.blockstore().read("dataset/old/seg-1").is_some());
        // Full reload reassembles the exact value.
        let back = store.get(&h("old")).unwrap();
        assert_eq!(*back, rows(1));
        let stats = store.stats();
        assert_eq!(stats.spill_loads, 1);
        assert_eq!(stats.segment_reads, 2);
    }

    #[test]
    fn get_columns_projects_in_memory_values() {
        let store = DatasetStore::new();
        store.put_segmented(&h("a"), rows(0), 64, seg_codec());
        let view: Arc<ColsView> = store.get_columns(&h("a"), &[1]).unwrap();
        assert_eq!(*view, vec![(1, vec![0.5; 4])]);
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.segment_reads, 0, "no disk traffic for a hit");
    }

    #[test]
    fn get_columns_from_spill_reads_only_requested_segments() {
        let store = DatasetStore::with_budget(100);
        store.put_segmented(&h("data"), rows(1), 64, seg_codec());
        store.put(&h("filler"), rows(2), 64); // spills "data"
        let before = store.blockstore().bytes_read();
        let view: Arc<ColsView> = store.get_columns(&h("data"), &[0]).unwrap();
        assert_eq!(*view, vec![(0, vec![1.0, 2.0, 3.0, 4.0])]);
        let stats = store.stats();
        assert_eq!(stats.segment_reads, 1, "only the requested segment");
        assert_eq!(stats.segment_bytes_read, 32); // 4 rows × 8 bytes
        assert!(stats.bytes_saved_by_projection >= 32, "skipped segment 1");
        assert_eq!(store.blockstore().bytes_read() - before, 32);
        // A second read of the same column is served from the partial
        // cache: a hit, no extra segment reads.
        let again: Arc<ColsView> = store.get_columns(&h("data"), &[0]).unwrap();
        assert_eq!(*again, *view);
        let stats2 = store.stats();
        assert_eq!(stats2.segment_reads, 1);
        assert_eq!(stats2.hits, 1);
    }

    #[test]
    fn out_of_range_column_is_an_error_not_a_panic() {
        let store = DatasetStore::with_budget(100);
        store.put_segmented(&h("data"), rows(1), 64, seg_codec());
        store.put(&h("filler"), rows(2), 64); // spills "data"
        let err = store
            .get_columns::<Vec<Vec<f64>>, ColsView>(&h("data"), &[7])
            .unwrap_err();
        assert_eq!(
            err,
            DatasetError::ColumnOutOfRange {
                name: "data".to_string(),
                column: 7,
                segments: 2,
            }
        );
        assert!(err.to_string().contains("column 7 out of range"));
    }

    #[test]
    fn full_reload_reuses_partially_decoded_columns() {
        let store = DatasetStore::with_budget(100);
        store.put_segmented(&h("data"), rows(1), 64, seg_codec());
        store.put(&h("filler"), rows(2), 64); // spills "data"
        let _view: Arc<ColsView> = store.get_columns(&h("data"), &[0]).unwrap();
        assert_eq!(store.stats().segment_reads, 1);
        // Upgrading to the full value reads only the missing segment.
        let back = store.get(&h("data")).unwrap();
        assert_eq!(*back, rows(1));
        let stats = store.stats();
        assert_eq!(stats.segment_reads, 2, "cached column not re-read");
        assert_eq!(stats.spill_loads, 1);
    }

    #[test]
    fn partial_column_cache_is_evictable() {
        // Budget sized so the partial column of "data" (32 = 64/2) must
        // be cleared when "big" lands.
        let store = DatasetStore::with_budget(100);
        store.put_segmented(&h("data"), rows(1), 64, seg_codec());
        store.put(&h("filler"), rows(2), 64); // spills "data"
        let _view: Arc<ColsView> = store.get_columns(&h("data"), &[0]).unwrap();
        let mem_with_partial = store.mem_bytes();
        assert!(mem_with_partial > 64, "partial cache counts into memory");
        store.put(&h("big"), rows(3), 90);
        // The partial cache was the only evictable memory.
        let evicted = store.stats();
        assert!(evicted.evictions >= 2);
        // The segments are still on disk, so the data is not lost.
        let back = store.get(&h("data")).unwrap();
        assert_eq!(*back, rows(1));
    }

    #[test]
    fn get_columns_requires_a_segmented_codec() {
        let store = DatasetStore::new();
        store.put_spillable(&h("whole"), rows(1), 64, rows_codec());
        let err = store
            .get_columns::<Vec<Vec<f64>>, ColsView>(&h("whole"), &[0])
            .unwrap_err();
        assert_eq!(
            err,
            DatasetError::NotSegmented {
                name: "whole".into()
            }
        );
    }

    #[test]
    fn segmented_overwrite_deletes_all_segment_files() {
        let store = DatasetStore::with_budget(100);
        store.put_segmented(&h("data"), rows(1), 64, seg_codec());
        store.put(&h("filler"), rows(2), 64); // spills "data"
        assert!(store.blockstore().read("dataset/data/seg-0").is_some());
        store.put(&h("data"), rows(9), 8);
        assert!(store.blockstore().read("dataset/data/header").is_none());
        assert!(store.blockstore().read("dataset/data/seg-0").is_none());
        assert!(store.blockstore().read("dataset/data/seg-1").is_none());
        assert_eq!(store.stats().live_spill_bytes, 0);
    }
}
