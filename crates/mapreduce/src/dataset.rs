//! Named, materialized datasets shared between the jobs of a DAG.
//!
//! A [`DatasetStore`] is the "distributed file system + block cache" of
//! the DAG scheduler ([`crate::dag`]): every job node reads its inputs
//! from the store and materializes its outputs back into it, so shared
//! inputs (e.g. the normalized row set) are loaded **once per pipeline**
//! instead of once per job. The store is in-memory first; under a byte
//! budget it evicts least-recently-used entries, *spilling* entries that
//! carry a [`DatasetCodec`] to the [`crate::BlockStore`] "HDFS-lite" and
//! *dropping* entries marked recomputable (lineage re-executes their
//! producer on the next read — Spark's RDD cache semantics).

use crate::blockstore::BlockStore;
use crate::engine::MrError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

/// A typed, named reference to a dataset in a [`DatasetStore`].
///
/// Handles are cheap to clone and carry the element type as a phantom,
/// so graph wiring stays type-checked while the store itself is
/// type-erased.
pub struct DatasetHandle<T> {
    name: Arc<str>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> DatasetHandle<T> {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: Arc::from(name.into()),
            _marker: PhantomData,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<T> Clone for DatasetHandle<T> {
    fn clone(&self) -> Self {
        Self {
            name: Arc::clone(&self.name),
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for DatasetHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DatasetHandle({})", self.name)
    }
}

/// Serialization functions that let the store spill a dataset to the
/// block store and load it back. Plain function pointers: codecs must
/// not capture state, which keeps spilled bytes self-describing.
pub struct DatasetCodec<T> {
    pub encode: fn(&T) -> Vec<u8>,
    pub decode: fn(&[u8]) -> T,
}

/// Takes a finished dataset out of the store after a DAG run, mapping a
/// missing or mistyped entry onto [`MrError::Dag`] for drivers whose
/// public result type is `Result<_, MrError>`.
pub fn take_dataset<T: Clone + Send + Sync + 'static>(
    store: &DatasetStore,
    handle: &DatasetHandle<T>,
) -> Result<T, MrError> {
    store
        .get(handle)
        .map(|v| (*v).clone())
        .map_err(|e| MrError::Dag {
            node: "<driver>".to_string(),
            message: e.to_string(),
        })
}

/// Built-in codec for the row-set dataset shared by the pipelines.
pub fn rows_codec() -> DatasetCodec<Vec<Vec<f64>>> {
    // The codec's `fn(&T)` shape forces `&Vec`, not `&[_]`.
    #[allow(clippy::ptr_arg)]
    fn encode(rows: &Vec<Vec<f64>>) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for row in rows {
            out.extend_from_slice(&(row.len() as u64).to_le_bytes());
            for v in row {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }
    fn decode(bytes: &[u8]) -> Vec<Vec<f64>> {
        let mut at = 0usize;
        let mut take8 = |buf: &[u8]| -> [u8; 8] {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[at..at + 8]);
            at += 8;
            b
        };
        let n = u64::from_le_bytes(take8(bytes)) as usize;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let d = u64::from_le_bytes(take8(bytes)) as usize;
            let mut row = Vec::with_capacity(d);
            for _ in 0..d {
                row.push(f64::from_le_bytes(take8(bytes)));
            }
            rows.push(row);
        }
        rows
    }
    DatasetCodec { encode, decode }
}

/// Store access errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// No dataset of this name is materialized (in memory or spilled).
    Missing { name: String },
    /// The dataset exists but was requested with the wrong element type.
    WrongType { name: String },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Missing { name } => write!(f, "dataset '{name}' is not materialized"),
            DatasetError::WrongType { name } => {
                write!(f, "dataset '{name}' requested with the wrong type")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// Counters describing cache behaviour since the store was created.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStoreStats {
    /// `get` calls served from memory.
    pub hits: u64,
    /// `get` calls that found nothing in memory (missing or spilled).
    pub misses: u64,
    /// Datasets written to the block store by eviction.
    pub spills: u64,
    /// Encoded bytes written by spills.
    pub spill_bytes: u64,
    /// Spilled datasets decoded back into memory on demand.
    pub spill_loads: u64,
    /// Datasets removed from memory by the budget (spilled or dropped).
    pub evictions: u64,
}

type AnyArc = Arc<dyn Any + Send + Sync>;

struct ErasedCodec {
    encode: Box<dyn Fn(&AnyArc) -> Vec<u8> + Send + Sync>,
    decode: Box<dyn Fn(&[u8]) -> AnyArc + Send + Sync>,
}

struct Entry {
    /// In-memory value; `None` when evicted (spilled or dropped).
    value: Option<AnyArc>,
    /// Caller-declared size estimate, used by the budget.
    bytes: usize,
    /// Pinned entries are never evicted.
    pins: usize,
    /// LRU clock value of the last touch.
    seq: u64,
    /// Lineage can rebuild this dataset by re-running its producer, so
    /// the budget may drop it without spilling.
    recomputable: bool,
    codec: Option<ErasedCodec>,
    /// The block store holds an up-to-date encoded copy.
    spilled: bool,
}

struct Inner {
    entries: BTreeMap<String, Entry>,
    mem_bytes: usize,
    clock: u64,
    stats: DatasetStoreStats,
}

/// The materialized-dataset store shared by all nodes of a DAG run.
pub struct DatasetStore {
    blockstore: Arc<BlockStore>,
    budget: Option<usize>,
    inner: Mutex<Inner>,
}

impl Default for DatasetStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DatasetStore {
    /// Unbounded in-memory store with a private spill block store.
    pub fn new() -> Self {
        Self::with_blockstore(Arc::new(BlockStore::new(1 << 20, 1)), None)
    }

    /// Store that evicts down to `budget` bytes of in-memory datasets.
    pub fn with_budget(budget: usize) -> Self {
        Self::with_blockstore(Arc::new(BlockStore::new(1 << 20, 1)), Some(budget))
    }

    /// Store spilling to an existing block store, optionally budgeted.
    pub fn with_blockstore(blockstore: Arc<BlockStore>, budget: Option<usize>) -> Self {
        Self {
            blockstore,
            budget,
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                mem_bytes: 0,
                clock: 0,
                stats: DatasetStoreStats::default(),
            }),
        }
    }

    pub fn blockstore(&self) -> &Arc<BlockStore> {
        &self.blockstore
    }

    /// Materializes a dataset. Overwrites any previous version (a
    /// re-executed producer publishes fresh output).
    pub fn put<T: Send + Sync + 'static>(&self, handle: &DatasetHandle<T>, value: T, bytes: usize) {
        self.insert(handle.name(), Arc::new(value), bytes, false, None);
    }

    /// Materializes a dataset the budget may *drop* from memory: its DAG
    /// producer can re-create it through lineage.
    pub fn put_recomputable<T: Send + Sync + 'static>(
        &self,
        handle: &DatasetHandle<T>,
        value: T,
        bytes: usize,
    ) {
        self.insert(handle.name(), Arc::new(value), bytes, true, None);
    }

    /// Materializes a dataset the budget may *spill* to the block store.
    pub fn put_spillable<T: Send + Sync + 'static>(
        &self,
        handle: &DatasetHandle<T>,
        value: T,
        bytes: usize,
        codec: DatasetCodec<T>,
    ) {
        let DatasetCodec { encode, decode } = codec;
        let erased = ErasedCodec {
            encode: Box::new(move |any: &AnyArc| {
                let typed = any
                    .clone()
                    .downcast::<T>()
                    .expect("codec type matches entry");
                encode(&typed)
            }),
            decode: Box::new(move |bytes: &[u8]| Arc::new(decode(bytes)) as AnyArc),
        };
        self.insert(handle.name(), Arc::new(value), bytes, false, Some(erased));
    }

    fn insert(
        &self,
        name: &str,
        value: AnyArc,
        bytes: usize,
        recomputable: bool,
        codec: Option<ErasedCodec>,
    ) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let seq = inner.clock;
        if let Some(old) = inner.entries.remove(name) {
            if old.value.is_some() {
                inner.mem_bytes -= old.bytes;
            }
            if old.spilled {
                self.blockstore.delete(&spill_file(name));
            }
        }
        inner.entries.insert(
            name.to_string(),
            Entry {
                value: Some(value),
                bytes,
                pins: 0,
                seq,
                recomputable,
                codec,
                spilled: false,
            },
        );
        inner.mem_bytes += bytes;
        self.enforce_budget(&mut inner, name);
    }

    /// Fetches a dataset, loading it back from spill if necessary.
    pub fn get<T: Send + Sync + 'static>(
        &self,
        handle: &DatasetHandle<T>,
    ) -> Result<Arc<T>, DatasetError> {
        let any = self.get_any(handle.name())?;
        any.downcast::<T>().map_err(|_| DatasetError::WrongType {
            name: handle.name().to_string(),
        })
    }

    fn get_any(&self, name: &str) -> Result<AnyArc, DatasetError> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        inner.clock += 1;
        let seq = inner.clock;
        let missing = || DatasetError::Missing {
            name: name.to_string(),
        };
        let Some(entry) = inner.entries.get_mut(name) else {
            inner.stats.misses += 1;
            return Err(missing());
        };
        entry.seq = seq;
        if let Some(value) = &entry.value {
            let value = Arc::clone(value);
            inner.stats.hits += 1;
            return Ok(value);
        }
        inner.stats.misses += 1;
        if !entry.spilled {
            return Err(missing());
        }
        // Reload the spilled copy. Entry bookkeeping first (the decode
        // borrows the codec, so split the borrows carefully).
        let bytes = self
            .blockstore
            .read(&spill_file(name))
            .ok_or_else(missing)?;
        let decoded = {
            let codec = entry.codec.as_ref().expect("spilled entries carry a codec");
            (codec.decode)(&bytes)
        };
        entry.value = Some(Arc::clone(&decoded));
        let entry_bytes = entry.bytes;
        inner.stats.spill_loads += 1;
        inner.mem_bytes += entry_bytes;
        self.enforce_budget(inner, name);
        Ok(decoded)
    }

    /// Whether the dataset is materialized (in memory or spilled).
    pub fn has(&self, name: &str) -> bool {
        let inner = self.inner.lock();
        inner
            .entries
            .get(name)
            .is_some_and(|e| e.value.is_some() || e.spilled)
    }

    /// Pins a dataset against eviction while a node consumes it.
    pub fn pin(&self, name: &str) {
        if let Some(e) = self.inner.lock().entries.get_mut(name) {
            e.pins += 1;
        }
    }

    pub fn unpin(&self, name: &str) {
        if let Some(e) = self.inner.lock().entries.get_mut(name) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Removes a dataset everywhere (memory and spill).
    pub fn remove(&self, name: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.remove(name) {
            Some(e) => {
                if e.value.is_some() {
                    inner.mem_bytes -= e.bytes;
                }
                if e.spilled {
                    self.blockstore.delete(&spill_file(name));
                }
                true
            }
            None => false,
        }
    }

    /// Drops the in-memory copy *and* any spilled copy, but keeps the
    /// entry registered — the next `get` reports it missing. This models
    /// losing a cached partition; the DAG scheduler's lineage recovery
    /// re-executes the producer to rebuild it.
    pub fn drop_cached(&self, name: &str) -> bool {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        match inner.entries.get_mut(name) {
            Some(e) => {
                if e.value.take().is_some() {
                    inner.mem_bytes -= e.bytes;
                }
                if e.spilled {
                    e.spilled = false;
                    self.blockstore.delete(&spill_file(name));
                }
                true
            }
            None => false,
        }
    }

    /// Bytes of datasets currently held in memory.
    pub fn mem_bytes(&self) -> usize {
        self.inner.lock().mem_bytes
    }

    /// Names of all registered datasets.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().entries.keys().cloned().collect()
    }

    pub fn stats(&self) -> DatasetStoreStats {
        self.inner.lock().stats
    }

    /// Evicts LRU entries until the budget holds. `exempt` (the entry
    /// just inserted or reloaded) is never evicted, so a single oversized
    /// dataset still materializes.
    fn enforce_budget(&self, inner: &mut Inner, exempt: &str) {
        let Some(budget) = self.budget else { return };
        while inner.mem_bytes > budget {
            let victim = inner
                .entries
                .iter()
                .filter(|(name, e)| {
                    e.value.is_some()
                        && e.pins == 0
                        && name.as_str() != exempt
                        && (e.codec.is_some() || e.recomputable)
                })
                .min_by_key(|(_, e)| e.seq)
                .map(|(name, _)| name.clone());
            let Some(name) = victim else { break };
            let entry = inner.entries.get_mut(&name).expect("victim exists");
            if let Some(codec) = &entry.codec {
                if !entry.spilled {
                    let value = entry.value.as_ref().expect("victim is in memory");
                    let encoded = (codec.encode)(value);
                    inner.stats.spills += 1;
                    inner.stats.spill_bytes += encoded.len() as u64;
                    self.blockstore.write(&spill_file(&name), &encoded);
                    let entry = inner.entries.get_mut(&name).expect("victim exists");
                    entry.spilled = true;
                }
            }
            let entry = inner.entries.get_mut(&name).expect("victim exists");
            entry.value = None;
            inner.mem_bytes -= entry.bytes;
            inner.stats.evictions += 1;
        }
    }
}

fn spill_file(name: &str) -> String {
    format!("dataset/{name}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(name: &str) -> DatasetHandle<Vec<Vec<f64>>> {
        DatasetHandle::new(name)
    }

    fn rows(k: usize) -> Vec<Vec<f64>> {
        (0..4).map(|i| vec![i as f64 + k as f64, 0.5]).collect()
    }

    #[test]
    fn put_get_roundtrip_and_hits() {
        let store = DatasetStore::new();
        store.put(&h("a"), rows(0), 64);
        let got = store.get(&h("a")).unwrap();
        assert_eq!(*got, rows(0));
        assert!(store.has("a"));
        assert!(!store.has("b"));
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn missing_and_wrong_type_error() {
        let store = DatasetStore::new();
        assert_eq!(
            store.get(&h("nope")).unwrap_err(),
            DatasetError::Missing {
                name: "nope".into()
            }
        );
        store.put(&h("a"), rows(0), 64);
        let wrong: DatasetHandle<Vec<u64>> = DatasetHandle::new("a");
        assert_eq!(
            store.get(&wrong).unwrap_err(),
            DatasetError::WrongType { name: "a".into() }
        );
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn budget_spills_lru_and_reloads() {
        let store = DatasetStore::with_budget(100);
        store.put_spillable(&h("old"), rows(1), 64, rows_codec());
        store.put_spillable(&h("new"), rows(2), 64, rows_codec());
        // 128 > 100: the LRU entry ("old") spills to the block store.
        let stats = store.stats();
        assert_eq!(stats.spills, 1);
        assert_eq!(stats.evictions, 1);
        assert!(stats.spill_bytes > 0);
        assert!(store.mem_bytes() <= 100);
        assert!(store.has("old"), "spilled datasets stay materialized");
        // Reading it back decodes the spilled copy (a miss + a load)...
        assert_eq!(*store.get(&h("old")).unwrap(), rows(1));
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.spill_loads, 1);
        // ...and pushes "new" out in turn (already-spilled page-out is
        // counted as an eviction, not a second spill of "old").
        assert!(store.mem_bytes() <= 100);
        assert_eq!(*store.get(&h("new")).unwrap(), rows(2));
    }

    #[test]
    fn budget_drops_recomputable_entries() {
        let store = DatasetStore::with_budget(100);
        store.put_recomputable(&h("derived"), rows(1), 64);
        store.put(&h("pinnedless"), rows(2), 64);
        // "derived" has no codec but is recomputable → dropped outright.
        assert_eq!(store.stats().spills, 0);
        assert_eq!(store.stats().evictions, 1);
        assert!(!store.has("derived"), "dropped datasets report missing");
        assert!(store.has("pinnedless"));
    }

    #[test]
    fn non_spillable_non_recomputable_entries_survive_budget() {
        let store = DatasetStore::with_budget(50);
        store.put(&h("a"), rows(1), 64);
        store.put(&h("b"), rows(2), 64);
        // Neither entry can be spilled or recomputed: the budget is
        // overshot rather than losing data.
        assert!(store.has("a") && store.has("b"));
        assert_eq!(store.stats().evictions, 0);
    }

    #[test]
    fn pinned_entries_are_not_evicted() {
        let store = DatasetStore::with_budget(100);
        store.put_spillable(&h("hot"), rows(1), 64, rows_codec());
        store.pin("hot");
        store.put_spillable(&h("cold"), rows(2), 64, rows_codec());
        // "hot" is older but pinned; nothing else is evictable ("cold"
        // is exempt as the fresh insert), so memory stays over budget.
        assert_eq!(store.stats().evictions, 0);
        store.unpin("hot");
        store.put_spillable(&h("third"), rows(3), 64, rows_codec());
        assert!(store.stats().evictions > 0);
    }

    #[test]
    fn drop_cached_loses_the_dataset() {
        let store = DatasetStore::new();
        store.put(&h("a"), rows(0), 64);
        assert!(store.drop_cached("a"));
        assert!(!store.has("a"));
        assert!(store.get(&h("a")).is_err());
        assert!(!store.drop_cached("ghost"));
    }

    #[test]
    fn overwrite_replaces_value_and_spill() {
        let store = DatasetStore::new();
        store.put(&h("a"), rows(1), 64);
        store.put(&h("a"), rows(9), 32);
        assert_eq!(*store.get(&h("a")).unwrap(), rows(9));
        assert_eq!(store.mem_bytes(), 32);
    }

    #[test]
    fn rows_codec_roundtrip() {
        let codec = rows_codec();
        let data = vec![vec![0.25, -1.5, 3.0], vec![], vec![42.0]];
        let encoded = (codec.encode)(&data);
        assert_eq!((codec.decode)(&encoded), data);
        let empty: Vec<Vec<f64>> = Vec::new();
        assert_eq!((codec.decode)(&(codec.encode)(&empty)), empty);
    }

    #[test]
    fn remove_deletes_everything() {
        let store = DatasetStore::with_budget(60);
        store.put_spillable(&h("a"), rows(1), 64, rows_codec());
        store.put_spillable(&h("b"), rows(2), 64, rows_codec());
        assert!(store.remove("a"));
        assert!(!store.has("a"));
        assert!(!store.remove("a"));
    }
}
