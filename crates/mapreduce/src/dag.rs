//! A DAG scheduler for MapReduce jobs over materialized datasets.
//!
//! The paper decomposes P3C+ into a *sequence* of MR jobs, but many of
//! those jobs are independent (per-attribute histogram shards, BoW's
//! per-partition clusterings). This module schedules them as a
//! dependency graph instead, Spark-style:
//!
//! * [`JobGraph`] — named nodes ([`JobNode`]), each an MR job (map-only,
//!   map-reduce, or with-combiner) declaring the datasets it reads and
//!   writes by [`DatasetHandle`].
//! * [`DagScheduler`] — topologically sorts the graph, runs every ready
//!   node concurrently (bounded by [`DagConfig::max_concurrent_jobs`]),
//!   materializes outputs in a [`DatasetStore`], and retries failed
//!   nodes up to [`DagConfig::max_node_attempts`].
//! * **Lineage** — when a node finds an input evicted or lost, the
//!   scheduler re-executes only the producing ancestors of that dataset
//!   (never the whole run) before retrying the node.
//! * **Metrics** — per-node timings, the concurrency high-water mark and
//!   the store's cache/spill counters are recorded as a
//!   [`DagMetrics`] entry in the engine's [`crate::ClusterMetrics`].

use crate::dataset::{DatasetError, DatasetHandle, DatasetStore};
use crate::engine::{Engine, MrError};
use crate::fault::FaultPlan;
use crate::metrics::{DagMetrics, DagNodeMetrics};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which driver code path executes a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerChoice {
    /// Chain the jobs sequentially (the paper's literal structure).
    #[default]
    Serial,
    /// Run the jobs as a dependency DAG with materialized datasets.
    Dag,
}

impl SchedulerChoice {
    /// Parses a CLI-style scheduler name (`"serial"` / `"dag"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "serial" => Some(Self::Serial),
            "dag" => Some(Self::Dag),
            _ => None,
        }
    }

    /// The canonical name, the inverse of [`SchedulerChoice::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Self::Serial => "serial",
            Self::Dag => "dag",
        }
    }
}

/// What shape of MR job a node runs (metadata for metrics/reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// Map tasks only; output comes straight from the mappers.
    MapOnly,
    /// Map, shuffle, reduce.
    MapReduce,
    /// Map, map-side combine, shuffle, reduce.
    MapCombineReduce,
}

impl JobKind {
    /// Human-readable kind label used in metrics and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::MapOnly => "map-only",
            JobKind::MapReduce => "map-reduce",
            JobKind::MapCombineReduce => "map-combine-reduce",
        }
    }
}

/// Errors of graph construction, scheduling and node execution.
#[derive(Debug)]
pub enum DagError {
    /// An underlying MapReduce job failed.
    Mr(MrError),
    /// A dataset-store access failed.
    Dataset(DatasetError),
    /// A node exhausted its attempts; `source` is the last failure.
    NodeFailed {
        /// The failing node.
        node: String,
        /// How many attempts were made.
        attempts: u64,
        /// The last attempt's error.
        source: Box<DagError>,
    },
    /// The DAG-level fault plan struck this node attempt.
    Injected {
        /// The node whose attempt was killed.
        node: String,
    },
    /// A node input has no producer and is not pre-seeded in the store.
    MissingInput {
        /// The node declaring the input.
        node: String,
        /// The dataset nobody produces.
        dataset: String,
    },
    /// Two nodes declare the same output dataset.
    DuplicateProducer {
        /// The doubly-produced dataset.
        dataset: String,
    },
    /// Two nodes share a name.
    DuplicateNode {
        /// The duplicated node name.
        name: String,
    },
    /// The graph is not acyclic; `nodes` are the unschedulable ones.
    Cycle {
        /// Nodes left unschedulable by the cycle.
        nodes: Vec<String>,
    },
    /// A node reported success without materializing a declared output.
    OutputNotMaterialized {
        /// The node that under-delivered.
        node: String,
        /// The missing dataset.
        dataset: String,
    },
    /// A scheduler worker thread panicked in node user code.
    WorkerPanicked {
        /// The DAG whose run was torn down.
        dag: String,
    },
}

impl DagError {
    /// Walks `NodeFailed` wrappers down to an engine error, if any.
    pub fn root_mr(&self) -> Option<&MrError> {
        match self {
            DagError::Mr(e) => Some(e),
            DagError::NodeFailed { source, .. } => source.root_mr(),
            _ => None,
        }
    }

    /// The failing node's name, when the error identifies one.
    pub fn node_name(&self) -> Option<&str> {
        match self {
            DagError::NodeFailed { node, .. }
            | DagError::Injected { node }
            | DagError::MissingInput { node, .. }
            | DagError::OutputNotMaterialized { node, .. } => Some(node),
            _ => None,
        }
    }

    /// Collapses the error onto [`MrError`] for drivers whose public
    /// result type predates the DAG scheduler: engine failures pass
    /// through untouched, scheduler-level failures keep the failing
    /// node's name in [`MrError::Dag`].
    pub fn into_mr(self) -> MrError {
        match self.root_mr() {
            Some(mr) => mr.clone(),
            None => MrError::Dag {
                node: self.node_name().unwrap_or("<graph>").to_string(),
                message: self.to_string(),
            },
        }
    }
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Mr(e) => write!(f, "{e}"),
            DagError::Dataset(e) => write!(f, "{e}"),
            DagError::NodeFailed {
                node,
                attempts,
                source,
            } => {
                write!(
                    f,
                    "DAG node '{node}' failed after {attempts} attempts: {source}"
                )
            }
            DagError::Injected { node } => {
                write!(f, "DAG node '{node}': injected fault")
            }
            DagError::MissingInput { node, dataset } => {
                write!(f, "DAG node '{node}': input dataset '{dataset}' has no producer and is not materialized")
            }
            DagError::DuplicateProducer { dataset } => {
                write!(f, "dataset '{dataset}' is produced by more than one node")
            }
            DagError::DuplicateNode { name } => {
                write!(f, "duplicate node name '{name}'")
            }
            DagError::Cycle { nodes } => {
                write!(f, "job graph has a cycle through: {}", nodes.join(", "))
            }
            DagError::OutputNotMaterialized { node, dataset } => {
                write!(
                    f,
                    "DAG node '{node}' finished without materializing output '{dataset}'"
                )
            }
            DagError::WorkerPanicked { dag } => {
                write!(f, "DAG '{dag}': a worker thread panicked in node code")
            }
        }
    }
}

impl std::error::Error for DagError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DagError::Mr(e) => Some(e),
            DagError::Dataset(e) => Some(e),
            DagError::NodeFailed { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<MrError> for DagError {
    fn from(e: MrError) -> Self {
        DagError::Mr(e)
    }
}

impl From<DatasetError> for DagError {
    fn from(e: DatasetError) -> Self {
        DagError::Dataset(e)
    }
}

/// Execution context handed to a node's body.
pub struct NodeCtx<'a> {
    /// The engine every MR job of this DAG runs on.
    pub engine: &'a Engine,
    store: &'a DatasetStore,
    node_name: &'a str,
}

impl NodeCtx<'_> {
    /// Reads an input dataset from the store.
    pub fn fetch<T: Send + Sync + 'static>(
        &self,
        handle: &DatasetHandle<T>,
    ) -> Result<Arc<T>, DagError> {
        self.store.get(handle).map_err(DagError::from)
    }

    /// Reads a projected view of a segmented input dataset, decoding
    /// only the requested column segments when the dataset is spilled
    /// (see [`DatasetStore::get_columns`]). `V` is the view type of the
    /// codec the dataset was registered with.
    pub fn fetch_columns<T, V>(
        &self,
        handle: &DatasetHandle<T>,
        cols: &[usize],
    ) -> Result<Arc<V>, DagError>
    where
        T: Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        self.store.get_columns(handle, cols).map_err(DagError::from)
    }

    /// Materializes an output dataset. Node outputs are registered as
    /// *recomputable*: under memory pressure the store may drop them,
    /// and lineage re-executes this node to rebuild them.
    pub fn put<T: Send + Sync + 'static>(&self, handle: &DatasetHandle<T>, value: T, bytes: usize) {
        self.store.put_recomputable(handle, value, bytes);
    }

    /// Direct access to the dataset store (pinning, spillable puts).
    pub fn store(&self) -> &DatasetStore {
        self.store
    }

    /// The executing node's name.
    pub fn node_name(&self) -> &str {
        self.node_name
    }
}

type NodeBody = Box<dyn Fn(&NodeCtx) -> Result<(), DagError> + Send + Sync>;

/// One node of a [`JobGraph`]: an MR job with declared dataset I/O.
pub struct JobNode {
    name: String,
    kind: JobKind,
    inputs: Vec<String>,
    outputs: Vec<String>,
    run: NodeBody,
}

impl JobNode {
    /// Creates a node from its name, kind and body. Dataset I/O is
    /// declared afterwards with [`JobNode::input`] / [`JobNode::output`].
    pub fn new(
        name: impl Into<String>,
        kind: JobKind,
        run: impl Fn(&NodeCtx) -> Result<(), DagError> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            kind,
            inputs: Vec::new(),
            outputs: Vec::new(),
            run: Box::new(run),
        }
    }

    /// Declares a dataset this node reads (builder style).
    pub fn input<T>(mut self, handle: &DatasetHandle<T>) -> Self {
        self.inputs.push(handle.name().to_string());
        self
    }

    /// Declares a dataset this node writes (builder style).
    pub fn output<T>(mut self, handle: &DatasetHandle<T>) -> Self {
        self.outputs.push(handle.name().to_string());
        self
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's job kind.
    pub fn kind(&self) -> JobKind {
        self.kind
    }
}

impl fmt::Debug for JobNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobNode")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .finish()
    }
}

/// A named DAG of [`JobNode`]s.
/// A named set of [`JobNode`]s; edges are implied by matching dataset
/// declarations (a node consuming `x` depends on the node producing `x`).
#[derive(Debug, Default)]
pub struct JobGraph {
    name: String,
    nodes: Vec<JobNode>,
}

impl JobGraph {
    /// Creates an empty graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Adds a node; declaration order breaks scheduling ties.
    pub fn add(&mut self, node: JobNode) -> &mut Self {
        self.nodes.push(node);
        self
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node names in declaration order.
    pub fn node_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.name.as_str()).collect()
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct DagConfig {
    /// Upper bound on nodes executing at the same time. Each node still
    /// runs its MR job on the engine's full thread pool, so a small
    /// number (Hadoop-style "job slots") avoids oversubscription.
    pub max_concurrent_jobs: usize,
    /// Attempts per node before the run fails (node-level retry, on top
    /// of the engine's per-task retries).
    pub max_node_attempts: usize,
    /// DAG-level fault injection: strikes whole node attempts, keyed by
    /// node name / node index / attempt like the engine's plan.
    pub fault: Option<FaultPlan>,
}

impl Default for DagConfig {
    fn default() -> Self {
        Self {
            max_concurrent_jobs: 4,
            max_node_attempts: 2,
            fault: None,
        }
    }
}

/// Result of a successful DAG run.
#[derive(Debug, Clone)]
pub struct DagReport {
    /// The run's execution counters (also recorded in the engine ledger).
    pub metrics: DagMetrics,
}

/// Executes a [`JobGraph`] on an [`Engine`] over a [`DatasetStore`].
pub struct DagScheduler<'e> {
    engine: &'e Engine,
    config: DagConfig,
}

/// Per-node mutable counters during a run.
#[derive(Default)]
struct NodeRun {
    attempts: u64,
    executions: u64,
    recoveries: u64,
    wall: Duration,
}

/// Shared, read-mostly context of one `run` invocation.
struct RunShared<'g> {
    graph: &'g JobGraph,
    store: &'g DatasetStore,
    /// dataset name → producing node index.
    producer: BTreeMap<&'g str, usize>,
    node_runs: Vec<Mutex<NodeRun>>,
    executions: AtomicU64,
    recovered: AtomicU64,
    failed_attempts: AtomicU64,
    /// Serializes lineage recovery so concurrent consumers of a lost
    /// dataset rebuild it once, not racing re-executions.
    recovery: Mutex<()>,
}

/// Scheduler queue state, guarded by one mutex + condvar.
struct QueueState {
    ready: VecDeque<usize>,
    indeg: Vec<usize>,
    remaining: usize,
    running: usize,
    high_water: usize,
    error: Option<DagError>,
}

impl<'e> DagScheduler<'e> {
    /// Scheduler with the default [`DagConfig`].
    pub fn new(engine: &'e Engine) -> Self {
        Self::with_config(engine, DagConfig::default())
    }

    /// Scheduler with an explicit configuration.
    pub fn with_config(engine: &'e Engine, config: DagConfig) -> Self {
        Self { engine, config }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &DagConfig {
        &self.config
    }

    /// Runs the graph to completion; on success every declared output is
    /// materialized in `store`.
    pub fn run(&self, graph: &JobGraph, store: &DatasetStore) -> Result<DagReport, DagError> {
        // audit: time-ok — wall time feeds DagMetrics only, never results.
        let started = Instant::now();
        let n = graph.nodes.len();
        let store_before = store.stats();
        let jobs_before = self.engine.cluster_metrics().num_jobs();

        // ---- validate: unique names, unique producers ----
        let mut producer: BTreeMap<&str, usize> = BTreeMap::new();
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for (i, node) in graph.nodes.iter().enumerate() {
            if !names.insert(node.name.as_str()) {
                return Err(DagError::DuplicateNode {
                    name: node.name.clone(),
                });
            }
            for out in &node.outputs {
                if producer.insert(out.as_str(), i).is_some() {
                    return Err(DagError::DuplicateProducer {
                        dataset: out.clone(),
                    });
                }
            }
        }

        // ---- edges: producer → consumer; sourceless inputs must be
        // pre-seeded in the store ----
        let mut dependents: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut indeg = vec![0usize; n];
        for (i, node) in graph.nodes.iter().enumerate() {
            for input in &node.inputs {
                match producer.get(input.as_str()) {
                    Some(&p) => {
                        if dependents[p].insert(i) {
                            indeg[i] += 1;
                        }
                    }
                    None => {
                        if !store.has(input) {
                            return Err(DagError::MissingInput {
                                node: node.name.clone(),
                                dataset: input.clone(),
                            });
                        }
                    }
                }
            }
        }

        // ---- Kahn pass: reject cycles before running anything ----
        {
            let mut deg = indeg.clone();
            let mut queue: Vec<usize> = (0..n).filter(|&i| deg[i] == 0).collect();
            let mut visited = 0usize;
            while let Some(i) = queue.pop() {
                visited += 1;
                for &d in &dependents[i] {
                    deg[d] -= 1;
                    if deg[d] == 0 {
                        queue.push(d);
                    }
                }
            }
            if visited < n {
                let stuck = (0..n)
                    .filter(|&i| deg[i] > 0)
                    .map(|i| graph.nodes[i].name.clone())
                    .collect();
                return Err(DagError::Cycle { nodes: stuck });
            }
        }

        let shared = RunShared {
            graph,
            store,
            producer,
            node_runs: (0..n).map(|_| Mutex::new(NodeRun::default())).collect(),
            executions: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            failed_attempts: AtomicU64::new(0),
            recovery: Mutex::new(()),
        };
        let state = Mutex::new(QueueState {
            ready: (0..n).filter(|&i| indeg[i] == 0).collect(),
            indeg,
            remaining: n,
            running: 0,
            high_water: 0,
            error: None,
        });
        let cv = Condvar::new();

        if n > 0 {
            let workers = self.config.max_concurrent_jobs.max(1).min(n);
            let scope_result = crossbeam::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| loop {
                        // Claim a ready node (or quit). The high-water
                        // mark is taken at claim time, under the lock.
                        let idx = {
                            let mut st = state.lock();
                            loop {
                                if st.error.is_some() || st.remaining == 0 {
                                    return;
                                }
                                if let Some(i) = st.ready.pop_front() {
                                    st.running += 1;
                                    st.high_water = st.high_water.max(st.running);
                                    break i;
                                }
                                if st.running == 0 {
                                    // Unreachable after the Kahn pass;
                                    // guard against hangs regardless.
                                    st.error = Some(DagError::Cycle {
                                        nodes: vec!["<stalled>".to_string()],
                                    });
                                    cv.notify_all();
                                    return;
                                }
                                cv.wait(&mut st);
                            }
                        };
                        let result = self.execute_node(&shared, idx);
                        let mut st = state.lock();
                        st.running -= 1;
                        match result {
                            Ok(()) => {
                                st.remaining -= 1;
                                for &d in &dependents[idx] {
                                    st.indeg[d] -= 1;
                                    if st.indeg[d] == 0 {
                                        st.ready.push_back(d);
                                    }
                                }
                            }
                            Err(e) => {
                                if st.error.is_none() {
                                    st.error = Some(e);
                                }
                            }
                        }
                        drop(st);
                        cv.notify_all();
                    });
                }
            });
            if scope_result.is_err() {
                // A worker died mid-run (node closure panicked outside
                // the engine's own catch). Surface it as a DAG error
                // rather than poisoning the caller with a panic.
                let mut st = state.lock();
                if st.error.is_none() {
                    st.error = Some(DagError::WorkerPanicked {
                        dag: graph.name.clone(),
                    });
                }
            }
        }

        let final_state = state.into_inner();
        let store_after = store.stats();
        let nodes = graph
            .nodes
            .iter()
            .zip(&shared.node_runs)
            .map(|(node, run)| {
                let run = run.lock();
                DagNodeMetrics {
                    node: node.name.clone(),
                    kind: node.kind.as_str().to_string(),
                    attempts: run.attempts,
                    executions: run.executions,
                    recoveries: run.recoveries,
                    wall: run.wall,
                }
            })
            .collect();
        let metrics = DagMetrics {
            dag_name: graph.name.clone(),
            nodes,
            concurrency_high_water: final_state.high_water as u64,
            // audit: relaxed-ok — metric reads after every worker joined
            // (crossbeam scope exit is the synchronization point).
            total_executions: shared.executions.load(Ordering::Relaxed),
            // audit: relaxed-ok — as above.
            recovered_executions: shared.recovered.load(Ordering::Relaxed),
            // audit: relaxed-ok — as above.
            failed_node_attempts: shared.failed_attempts.load(Ordering::Relaxed),
            cache_hits: store_after.hits - store_before.hits,
            cache_misses: store_after.misses - store_before.misses,
            spills: store_after.spills - store_before.spills,
            spill_bytes: store_after.spill_bytes - store_before.spill_bytes,
            spill_raw_bytes: store_after.spill_raw_bytes - store_before.spill_raw_bytes,
            spill_loads: store_after.spill_loads - store_before.spill_loads,
            segment_reads: store_after.segment_reads - store_before.segment_reads,
            segment_bytes_read: store_after.segment_bytes_read - store_before.segment_bytes_read,
            bytes_saved_by_projection: store_after.bytes_saved_by_projection
                - store_before.bytes_saved_by_projection,
            evictions: store_after.evictions - store_before.evictions,
            shuffle_fetches: 0,
            fetch_retries: 0,
            worker_restarts: 0,
            shuffle_bytes_moved: 0,
            wall: started.elapsed(),
        };
        // Shuffle-backend data-plane totals: sum the per-job counters of
        // exactly the jobs this run executed (the ledger grows append-only,
        // so everything past the pre-run snapshot belongs to this run).
        let mut metrics = metrics;
        for job in &self.engine.cluster_metrics().jobs()[jobs_before..] {
            metrics.shuffle_fetches += job.shuffle_fetches;
            metrics.fetch_retries += job.fetch_retries;
            metrics.worker_restarts += job.worker_restarts;
            metrics.shuffle_bytes_moved += job.shuffle_bytes_moved;
        }
        let metrics = metrics;
        self.engine.record_dag(metrics.clone());
        match final_state.error {
            Some(e) => Err(e),
            None => Ok(DagReport { metrics }),
        }
    }

    /// Runs one node with retries; inputs are pinned for the duration of
    /// each attempt and recovered through lineage when missing.
    fn execute_node(&self, shared: &RunShared<'_>, idx: usize) -> Result<(), DagError> {
        let node = &shared.graph.nodes[idx];
        let max_attempts = self.config.max_node_attempts.max(1);
        let mut attempt = 0;
        loop {
            self.ensure_inputs(shared, idx)?;
            for input in &node.inputs {
                shared.store.pin(input);
            }
            // audit: time-ok — per-node wall time feeds metrics only.
            let t0 = Instant::now();
            // audit: relaxed-ok — monotonic metric counter.
            shared.executions.fetch_add(1, Ordering::Relaxed);
            let injected = self
                .config
                .fault
                .as_ref()
                .is_some_and(|plan| plan.should_fail(&node.name, idx, attempt));
            let result = if injected {
                Err(DagError::Injected {
                    node: node.name.clone(),
                })
            } else {
                (node.run)(&NodeCtx {
                    engine: self.engine,
                    store: shared.store,
                    node_name: &node.name,
                })
            };
            for input in &node.inputs {
                shared.store.unpin(input);
            }
            {
                let mut run = shared.node_runs[idx].lock();
                run.attempts += 1;
                run.executions += 1;
                run.wall += t0.elapsed();
            }
            match result {
                Ok(()) => {
                    for out in &node.outputs {
                        if !shared.store.has(out) {
                            return Err(DagError::OutputNotMaterialized {
                                node: node.name.clone(),
                                dataset: out.clone(),
                            });
                        }
                    }
                    return Ok(());
                }
                Err(e) => {
                    // audit: relaxed-ok — monotonic metric counter.
                    shared.failed_attempts.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    if attempt >= max_attempts {
                        return Err(DagError::NodeFailed {
                            node: node.name.clone(),
                            attempts: attempt as u64,
                            source: Box::new(e),
                        });
                    }
                }
            }
        }
    }

    /// Makes sure every input of `idx` is materialized, re-executing
    /// lost producers (and transitively *their* lost inputs) — lineage
    /// recovery à la RDDs.
    fn ensure_inputs(&self, shared: &RunShared<'_>, idx: usize) -> Result<(), DagError> {
        let node = &shared.graph.nodes[idx];
        if node.inputs.iter().all(|i| shared.store.has(i)) {
            return Ok(());
        }
        let _serialize_recovery = shared.recovery.lock();
        for input in &node.inputs {
            self.recover_dataset(shared, &node.name, input)?;
        }
        Ok(())
    }

    fn recover_dataset(
        &self,
        shared: &RunShared<'_>,
        consumer: &str,
        dataset: &str,
    ) -> Result<(), DagError> {
        if shared.store.has(dataset) {
            return Ok(());
        }
        let Some(&p) = shared.producer.get(dataset) else {
            return Err(DagError::MissingInput {
                node: consumer.to_string(),
                dataset: dataset.to_string(),
            });
        };
        let pnode = &shared.graph.nodes[p];
        for input in &pnode.inputs {
            self.recover_dataset(shared, &pnode.name, input)?;
        }
        // audit: relaxed-ok — monotonic metric counters.
        shared.executions.fetch_add(1, Ordering::Relaxed);
        // audit: relaxed-ok — monotonic metric counter.
        shared.recovered.fetch_add(1, Ordering::Relaxed);
        // audit: time-ok — recovery wall time feeds metrics only.
        let t0 = Instant::now();
        let result = (pnode.run)(&NodeCtx {
            engine: self.engine,
            store: shared.store,
            node_name: &pnode.name,
        });
        {
            let mut run = shared.node_runs[p].lock();
            run.executions += 1;
            run.recoveries += 1;
            run.wall += t0.elapsed();
        }
        result.map_err(|e| DagError::NodeFailed {
            node: pnode.name.clone(),
            attempts: 1,
            source: Box::new(e),
        })?;
        for out in &pnode.outputs {
            if !shared.store.has(out) {
                return Err(DagError::OutputNotMaterialized {
                    node: pnode.name.clone(),
                    dataset: out.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Emitter;
    use crate::engine::MrConfig;
    use std::sync::atomic::AtomicUsize;

    fn engine() -> Engine {
        Engine::new(MrConfig {
            split_size: 4,
            ..MrConfig::default()
        })
    }

    fn nums() -> DatasetHandle<Vec<u64>> {
        DatasetHandle::new("nums")
    }

    fn seed_nums(store: &DatasetStore, upto: u64) {
        store.put(&nums(), (0..upto).collect::<Vec<u64>>(), 8 * upto as usize);
    }

    /// A node body: sums `nums` with an MR job into `out`.
    fn sum_node(out: DatasetHandle<u64>) -> impl Fn(&NodeCtx) -> Result<(), DagError> {
        move |ctx: &NodeCtx| {
            let input = ctx.fetch(&nums())?;
            let mapper = |r: &u64, em: &mut Emitter<(), u64>| em.emit((), *r);
            let reducer = |_k: &(), vs: Vec<u64>, o: &mut Vec<u64>| {
                o.push(vs.into_iter().sum());
            };
            let res = ctx.engine.run(ctx.node_name(), &input, &mapper, &reducer)?;
            ctx.put(&out, res.output.into_iter().sum::<u64>(), 8);
            Ok(())
        }
    }

    #[test]
    fn two_node_chain_runs_in_order() {
        let eng = engine();
        let store = DatasetStore::new();
        seed_nums(&store, 10);
        let total: DatasetHandle<u64> = DatasetHandle::new("total");
        let doubled: DatasetHandle<u64> = DatasetHandle::new("doubled");
        let mut graph = JobGraph::new("chain");
        graph.add(
            JobNode::new("sum", JobKind::MapReduce, sum_node(total.clone()))
                .input(&nums())
                .output(&total),
        );
        graph.add(
            JobNode::new("double", JobKind::MapOnly, {
                let total = total.clone();
                let doubled = doubled.clone();
                move |ctx: &NodeCtx| {
                    let t = ctx.fetch(&total)?;
                    ctx.put(&doubled, *t * 2, 8);
                    Ok(())
                }
            })
            .input(&total)
            .output(&doubled),
        );
        let report = DagScheduler::new(&eng).run(&graph, &store).unwrap();
        assert_eq!(*store.get(&doubled).unwrap(), 90);
        assert_eq!(report.metrics.total_executions, 2);
        assert_eq!(report.metrics.recovered_executions, 0);
        assert_eq!(report.metrics.nodes.len(), 2);
        assert_eq!(report.metrics.node("sum").unwrap().kind, "map-reduce");
        // The run is recorded in the engine ledger next to its jobs.
        let ledger = eng.cluster_metrics();
        assert_eq!(ledger.dag_runs().len(), 1);
        assert_eq!(ledger.dag_runs()[0].dag_name, "chain");
        assert_eq!(ledger.jobs()[0].job_name, "sum");
    }

    #[test]
    fn independent_nodes_run_concurrently() {
        let eng = engine();
        let store = DatasetStore::new();
        seed_nums(&store, 8);
        let mut graph = JobGraph::new("parallel");
        let started = Arc::new(AtomicUsize::new(0));
        for name in ["left", "right"] {
            let out: DatasetHandle<u64> = DatasetHandle::new(format!("{name}-out"));
            let started = Arc::clone(&started);
            graph.add(
                JobNode::new(name, JobKind::MapOnly, {
                    let out = out.clone();
                    move |ctx: &NodeCtx| {
                        started.fetch_add(1, Ordering::SeqCst);
                        // Rendezvous: wait (bounded) until both node
                        // bodies have started, proving true overlap.
                        let deadline = Instant::now() + Duration::from_secs(5);
                        while started.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
                            std::thread::yield_now();
                        }
                        let input = ctx.fetch(&nums())?;
                        ctx.put(&out, input.iter().sum(), 8);
                        Ok(())
                    }
                })
                .input(&nums())
                .output(&out),
            );
        }
        let report = DagScheduler::new(&eng).run(&graph, &store).unwrap();
        assert_eq!(started.load(Ordering::SeqCst), 2);
        assert!(
            report.metrics.concurrency_high_water >= 2,
            "high water {}",
            report.metrics.concurrency_high_water
        );
        // Both nodes read the shared input from cache: ≥ 2 hits.
        assert!(
            report.metrics.cache_hits >= 2,
            "hits {}",
            report.metrics.cache_hits
        );
    }

    #[test]
    fn diamond_respects_dependencies() {
        let eng = engine();
        let store = DatasetStore::new();
        seed_nums(&store, 6);
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let a: DatasetHandle<u64> = DatasetHandle::new("a");
        let b: DatasetHandle<u64> = DatasetHandle::new("b");
        let c: DatasetHandle<u64> = DatasetHandle::new("c");
        let d: DatasetHandle<u64> = DatasetHandle::new("d");
        let mk = |name: &'static str,
                  input: DatasetHandle<u64>,
                  output: DatasetHandle<u64>,
                  order: Arc<Mutex<Vec<&'static str>>>| {
            let body = {
                let (input, output) = (input.clone(), output.clone());
                move |ctx: &NodeCtx| {
                    order.lock().push(name);
                    let v = ctx.fetch(&input)?;
                    ctx.put(&output, *v + 1, 8);
                    Ok(())
                }
            };
            JobNode::new(name, JobKind::MapOnly, body)
                .input(&input)
                .output(&output)
        };
        let mut graph = JobGraph::new("diamond");
        graph.add(
            JobNode::new("root", JobKind::MapOnly, {
                let a = a.clone();
                let order = Arc::clone(&order);
                move |ctx: &NodeCtx| {
                    order.lock().push("root");
                    ctx.put(&a, 1, 8);
                    Ok(())
                }
            })
            .output(&a),
        );
        graph.add(mk("left", a.clone(), b.clone(), Arc::clone(&order)));
        graph.add(mk("right", a.clone(), c.clone(), Arc::clone(&order)));
        graph.add(
            JobNode::new("join", JobKind::MapOnly, {
                let b = b.clone();
                let c = c.clone();
                let d = d.clone();
                let order = Arc::clone(&order);
                move |ctx: &NodeCtx| {
                    order.lock().push("join");
                    let vb = ctx.fetch(&b)?;
                    let vc = ctx.fetch(&c)?;
                    ctx.put(&d, *vb + *vc, 8);
                    Ok(())
                }
            })
            .input(&b)
            .input(&c)
            .output(&d),
        );
        DagScheduler::new(&eng).run(&graph, &store).unwrap();
        assert_eq!(*store.get(&d).unwrap(), 4);
        let order = order.lock();
        assert_eq!(order.first(), Some(&"root"));
        assert_eq!(order.last(), Some(&"join"));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn cycle_is_rejected() {
        let eng = engine();
        let store = DatasetStore::new();
        let x: DatasetHandle<u64> = DatasetHandle::new("x");
        let y: DatasetHandle<u64> = DatasetHandle::new("y");
        let mut graph = JobGraph::new("cyclic");
        graph.add(
            JobNode::new("n1", JobKind::MapOnly, |_: &NodeCtx| Ok(()))
                .input(&y)
                .output(&x),
        );
        graph.add(
            JobNode::new("n2", JobKind::MapOnly, |_: &NodeCtx| Ok(()))
                .input(&x)
                .output(&y),
        );
        let err = DagScheduler::new(&eng).run(&graph, &store).unwrap_err();
        match err {
            DagError::Cycle { nodes } => {
                assert_eq!(nodes, vec!["n1".to_string(), "n2".to_string()])
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn missing_input_and_duplicates_are_rejected() {
        let eng = engine();
        let store = DatasetStore::new();
        let x: DatasetHandle<u64> = DatasetHandle::new("x");
        let mut graph = JobGraph::new("bad-input");
        graph.add(JobNode::new("n", JobKind::MapOnly, |_: &NodeCtx| Ok(())).input(&x));
        let err = DagScheduler::new(&eng).run(&graph, &store).unwrap_err();
        assert!(matches!(err, DagError::MissingInput { ref dataset, .. } if dataset == "x"));

        let mut graph = JobGraph::new("dup-producer");
        graph.add(JobNode::new("n1", JobKind::MapOnly, |_: &NodeCtx| Ok(())).output(&x));
        graph.add(JobNode::new("n2", JobKind::MapOnly, |_: &NodeCtx| Ok(())).output(&x));
        let err = DagScheduler::new(&eng).run(&graph, &store).unwrap_err();
        assert!(matches!(err, DagError::DuplicateProducer { ref dataset } if dataset == "x"));

        let mut graph = JobGraph::new("dup-node");
        graph.add(JobNode::new("n", JobKind::MapOnly, |_: &NodeCtx| Ok(())));
        graph.add(JobNode::new("n", JobKind::MapOnly, |_: &NodeCtx| Ok(())));
        let err = DagScheduler::new(&eng).run(&graph, &store).unwrap_err();
        assert!(matches!(err, DagError::DuplicateNode { ref name } if name == "n"));
    }

    #[test]
    fn exhausted_node_surfaces_its_name_and_mr_error() {
        // The node's engine job is doomed: certain fault, so every node
        // attempt ends in MrError::TaskFailed. The scheduler must give
        // up after max_node_attempts and name the failing node.
        let eng = Engine::new(MrConfig {
            split_size: 4,
            fault: Some(FaultPlan::new(1.0, 7)),
            max_attempts: 3,
            ..MrConfig::default()
        });
        let store = DatasetStore::new();
        seed_nums(&store, 10);
        let out: DatasetHandle<u64> = DatasetHandle::new("out");
        let mut graph = JobGraph::new("doomed");
        graph.add(
            JobNode::new("doomed-node", JobKind::MapReduce, sum_node(out.clone()))
                .input(&nums())
                .output(&out),
        );
        let err = DagScheduler::new(&eng).run(&graph, &store).unwrap_err();
        assert_eq!(err.node_name(), Some("doomed-node"));
        match &err {
            DagError::NodeFailed { node, attempts, .. } => {
                assert_eq!(node, "doomed-node");
                assert_eq!(*attempts, 2);
            }
            other => panic!("expected NodeFailed, got {other:?}"),
        }
        assert!(
            matches!(err.root_mr(), Some(MrError::TaskFailed { attempts: 3, .. })),
            "root: {:?}",
            err.root_mr()
        );
        // The failed run is still recorded, with its failure counters.
        let dag_runs = eng.cluster_metrics();
        assert_eq!(dag_runs.dag_runs().len(), 1);
        assert_eq!(dag_runs.dag_runs()[0].failed_node_attempts, 2);
    }

    #[test]
    fn dag_level_fault_injection_retries_and_recovers() {
        let eng = engine();
        let store = DatasetStore::new();
        seed_nums(&store, 10);
        let out: DatasetHandle<u64> = DatasetHandle::new("out");
        let mut graph = JobGraph::new("flaky");
        graph.add(
            JobNode::new("sum", JobKind::MapReduce, sum_node(out.clone()))
                .input(&nums())
                .output(&out),
        );
        // Fault probability 0.5: with 20 attempts allowed, success is
        // certain for the deterministic splitmix sequence in practice.
        let config = DagConfig {
            max_node_attempts: 20,
            fault: Some(FaultPlan::new(0.5, 21)),
            ..DagConfig::default()
        };
        let report = DagScheduler::with_config(&eng, config)
            .run(&graph, &store)
            .unwrap();
        assert_eq!(*store.get(&out).unwrap(), 45);
        let run = report.metrics.node("sum").unwrap();
        assert_eq!(run.attempts, report.metrics.failed_node_attempts + 1);
    }

    #[test]
    fn lineage_recovers_only_lost_ancestors() {
        // Chain: produce "a" → derive "b" → consume in "c". The first
        // attempt of "c" simulates losing "b" (evicted cache) and fails;
        // recovery must re-execute *only* the producer of "b" — not the
        // root — before the retry succeeds.
        let eng = engine();
        let store = DatasetStore::new();
        let a: DatasetHandle<u64> = DatasetHandle::new("a");
        let b: DatasetHandle<u64> = DatasetHandle::new("b");
        let c: DatasetHandle<u64> = DatasetHandle::new("c");
        let mut graph = JobGraph::new("lineage");
        graph.add(
            JobNode::new("make-a", JobKind::MapOnly, {
                let a = a.clone();
                move |ctx: &NodeCtx| {
                    ctx.put(&a, 5, 8);
                    Ok(())
                }
            })
            .output(&a),
        );
        graph.add(
            JobNode::new("make-b", JobKind::MapOnly, {
                let a = a.clone();
                let b = b.clone();
                move |ctx: &NodeCtx| {
                    let va = ctx.fetch(&a)?;
                    ctx.put(&b, *va * 10, 8);
                    Ok(())
                }
            })
            .input(&a)
            .output(&b),
        );
        let attempts = Arc::new(AtomicUsize::new(0));
        graph.add(
            JobNode::new("make-c", JobKind::MapOnly, {
                let b = b.clone();
                let c = c.clone();
                let attempts = Arc::clone(&attempts);
                move |ctx: &NodeCtx| {
                    if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                        // Simulate a lost cached dataset, then fail.
                        ctx.store().drop_cached(b.name());
                        return Err(DagError::Injected {
                            node: "make-c".into(),
                        });
                    }
                    let vb = ctx.fetch(&b)?;
                    ctx.put(&c, *vb + 1, 8);
                    Ok(())
                }
            })
            .input(&b)
            .output(&c),
        );
        let report = DagScheduler::new(&eng).run(&graph, &store).unwrap();
        assert_eq!(*store.get(&c).unwrap(), 51);
        let m = &report.metrics;
        // Only the lost ancestor re-executed: the re-execution counter
        // stays below the total node count.
        assert_eq!(m.recovered_executions, 1);
        assert!(m.recovered_executions < graph.len() as u64);
        assert_eq!(
            m.node("make-a").unwrap().executions,
            1,
            "root must not re-run"
        );
        assert_eq!(m.node("make-b").unwrap().recoveries, 1);
        assert_eq!(m.node("make-b").unwrap().executions, 2);
        assert_eq!(m.node("make-c").unwrap().attempts, 2);
        // 3 scheduled + 1 failed attempt + 1 recovery.
        assert_eq!(m.total_executions, 5);
    }

    #[test]
    fn dag_metrics_totals_exact_under_max_contention() {
        // Counter-ledger stress: 24 independent nodes, a third of which
        // fail their first attempt, all racing with every job slot open.
        // Whatever interleaving the scheduler picks, the merged
        // DagMetrics totals must come out exact — lost updates in the
        // metric merge would show up as off-by-N here.
        const NODES: u64 = 24;
        const FLAKY_EVERY: u64 = 3; // node 0, 3, 6, ... fail once
        for round in 0..3u64 {
            let eng = engine();
            let store = DatasetStore::new();
            seed_nums(&store, 16);
            let mut graph = JobGraph::new(format!("contended-{round}"));
            for i in 0..NODES {
                let out: DatasetHandle<u64> = DatasetHandle::new(format!("out-{i}"));
                let tries = Arc::new(AtomicUsize::new(0));
                graph.add(
                    JobNode::new(format!("n{i}"), JobKind::MapOnly, {
                        let out = out.clone();
                        move |ctx: &NodeCtx| {
                            if i % FLAKY_EVERY == 0 && tries.fetch_add(1, Ordering::SeqCst) == 0 {
                                return Err(DagError::Injected {
                                    node: ctx.node_name().to_string(),
                                });
                            }
                            let input = ctx.fetch(&nums())?;
                            let mapper = |r: &u64, em: &mut Emitter<(), u64>| em.emit((), r * 3);
                            let res = ctx.engine.run_map_only(ctx.node_name(), &input, &mapper)?;
                            ctx.put(&out, res.output.iter().sum(), 8);
                            Ok(())
                        }
                    })
                    .input(&nums())
                    .output(&out),
                );
            }
            let cfg = DagConfig {
                max_concurrent_jobs: NODES as usize,
                max_node_attempts: 2,
                ..DagConfig::default()
            };
            let report = DagScheduler::with_config(&eng, cfg)
                .run(&graph, &store)
                .unwrap();
            let m = &report.metrics;
            let flaky = NODES.div_ceil(FLAKY_EVERY);
            assert_eq!(m.failed_node_attempts, flaky, "round {round}");
            assert_eq!(m.total_executions, NODES + flaky, "round {round}");
            assert_eq!(m.recovered_executions, 0, "round {round}");
            assert_eq!(m.nodes.len(), NODES as usize, "round {round}");
            let attempt_sum: u64 = m.nodes.iter().map(|n| n.attempts).sum();
            assert_eq!(attempt_sum, NODES + flaky, "round {round}");
            for i in 0..NODES {
                let node = m.node(&format!("n{i}")).unwrap();
                let want = if i % FLAKY_EVERY == 0 { 2 } else { 1 };
                assert_eq!(node.attempts, want, "round {round} node {i}");
                assert_eq!(node.executions, want, "round {round} node {i}");
                // Every node's output survived the stampede.
                let out: DatasetHandle<u64> = DatasetHandle::new(format!("out-{i}"));
                assert_eq!(*store.get(&out).unwrap(), (0..16).map(|x| x * 3).sum());
            }
            assert!(
                m.concurrency_high_water >= 1 && m.concurrency_high_water <= NODES,
                "round {round}: high water {}",
                m.concurrency_high_water
            );
        }
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let eng = engine();
        let store = DatasetStore::new();
        let graph = JobGraph::new("empty");
        let report = DagScheduler::new(&eng).run(&graph, &store).unwrap();
        assert_eq!(report.metrics.total_executions, 0);
        assert_eq!(report.metrics.concurrency_high_water, 0);
    }

    #[test]
    fn output_must_be_materialized() {
        let eng = engine();
        let store = DatasetStore::new();
        let x: DatasetHandle<u64> = DatasetHandle::new("x");
        let mut graph = JobGraph::new("liar");
        graph.add(JobNode::new("liar", JobKind::MapOnly, |_: &NodeCtx| Ok(())).output(&x));
        let err = DagScheduler::new(&eng).run(&graph, &store).unwrap_err();
        assert!(
            matches!(err, DagError::OutputNotMaterialized { ref dataset, .. } if dataset == "x")
        );
    }
}
