//! "HDFS-lite": a tiny in-memory replicated block store.
//!
//! The paper stages its datasets on HDFS; mappers read their split from the
//! block containing it. This module models just enough of that behaviour
//! for the examples and I/O accounting: named files are stored as
//! fixed-size blocks, each block carries a replication factor, and the
//! store meters bytes read and written.

use crate::sync::{rank, RankedRwLock};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default block size (small on purpose — test datasets are small too).
pub const DEFAULT_BLOCK_SIZE: usize = 64 * 1024;

/// A replicated, block-structured in-memory file store.
#[derive(Debug)]
pub struct BlockStore {
    block_size: usize,
    replication: usize,
    files: RankedRwLock<BTreeMap<String, Vec<Bytes>>>,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl Default for BlockStore {
    fn default() -> Self {
        Self::new(DEFAULT_BLOCK_SIZE, 3)
    }
}

impl BlockStore {
    /// Creates a store with the given block size and replication factor.
    /// Zero values are clamped to 1 (a zero block size cannot chunk, and
    /// replication below 1 would drop data in a real DFS).
    pub fn new(block_size: usize, replication: usize) -> Self {
        Self {
            block_size: block_size.max(1),
            replication: replication.max(1),
            files: RankedRwLock::new(rank::BLOCKSTORE_FILES, "blockstore.files", BTreeMap::new()),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        }
    }

    /// Block size files are chunked into.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Replication factor charged on writes.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Writes (or overwrites) a file, splitting it into blocks. Charged
    /// write bytes include replication, like a real HDFS pipeline.
    pub fn write(&self, name: &str, data: &[u8]) {
        let blocks: Vec<Bytes> = data
            .chunks(self.block_size)
            .map(Bytes::copy_from_slice)
            .collect();
        let charged = (data.len() * self.replication) as u64;
        // audit: relaxed-ok — monotonic byte counter; read via
        // bytes_written() after jobs join.
        self.bytes_written.fetch_add(charged, Ordering::Relaxed);
        self.files.write().insert(name.to_string(), blocks);
    }

    /// Writes several files under a single lock acquisition, so a
    /// multi-file artifact (e.g. a segmented dataset spill: one header
    /// plus one file per column) appears atomically — readers see either
    /// none or all of the files. Write bytes are charged with
    /// replication, exactly as per-file [`BlockStore::write`] would.
    pub fn write_many(&self, entries: &[(String, Vec<u8>)]) {
        let mut files = self.files.write();
        for (name, data) in entries {
            let blocks: Vec<Bytes> = data
                .chunks(self.block_size)
                .map(Bytes::copy_from_slice)
                .collect();
            let charged = (data.len() * self.replication) as u64;
            // audit: relaxed-ok — monotonic byte counter.
            self.bytes_written.fetch_add(charged, Ordering::Relaxed);
            files.insert(name.clone(), blocks);
        }
    }

    /// Reads a whole file back; `None` if absent.
    pub fn read(&self, name: &str) -> Option<Vec<u8>> {
        let files = self.files.read();
        let blocks = files.get(name)?;
        let mut out = Vec::with_capacity(blocks.iter().map(|b| b.len()).sum());
        for b in blocks {
            out.extend_from_slice(b);
        }
        // audit: relaxed-ok — monotonic byte counter.
        self.bytes_read
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Some(out)
    }

    /// Reads one block of a file; `None` if the file or block is absent.
    pub fn read_block(&self, name: &str, index: usize) -> Option<Bytes> {
        let files = self.files.read();
        let block = files.get(name)?.get(index)?.clone();
        // audit: relaxed-ok — monotonic byte counter.
        self.bytes_read
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        Some(block)
    }

    /// Number of blocks of a file; `None` if absent.
    pub fn num_blocks(&self, name: &str) -> Option<usize> {
        self.files.read().get(name).map(|b| b.len())
    }

    /// File size in bytes; `None` if absent.
    pub fn file_size(&self, name: &str) -> Option<usize> {
        self.files
            .read()
            .get(name)
            .map(|b| b.iter().map(|x| x.len()).sum())
    }

    /// Deletes a file; returns whether it existed.
    pub fn delete(&self, name: &str) -> bool {
        self.files.write().remove(name).is_some()
    }

    /// Deletes every file whose name starts with `prefix` under a single
    /// lock acquisition (the teardown counterpart of
    /// [`BlockStore::write_many`]); returns how many were removed.
    pub fn delete_prefix(&self, prefix: &str) -> usize {
        let mut files = self.files.write();
        let doomed: Vec<String> = files
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(name, _)| name.clone())
            .collect();
        for name in &doomed {
            files.remove(name);
        }
        doomed.len()
    }

    /// Lists file names.
    pub fn list(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// Total bytes written (replication included).
    pub fn bytes_written(&self) -> u64 {
        // audit: relaxed-ok — metric read; callers sample after joins.
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        // audit: relaxed-ok — metric read; callers sample after joins.
        self.bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let store = BlockStore::new(4, 1);
        let data = b"hello block store".to_vec();
        store.write("f", &data);
        assert_eq!(store.read("f").unwrap(), data);
        assert_eq!(store.num_blocks("f"), Some(5)); // 17 bytes / 4 per block
        assert_eq!(store.file_size("f"), Some(17));
    }

    #[test]
    fn replication_charged_on_write() {
        let store = BlockStore::new(1024, 3);
        store.write("f", &[0u8; 100]);
        assert_eq!(store.bytes_written(), 300);
    }

    #[test]
    fn block_reads() {
        let store = BlockStore::new(2, 1);
        store.write("f", b"abcdef");
        assert_eq!(store.read_block("f", 0).unwrap().as_ref(), b"ab");
        assert_eq!(store.read_block("f", 2).unwrap().as_ref(), b"ef");
        assert!(store.read_block("f", 3).is_none());
        assert!(store.read_block("g", 0).is_none());
        assert_eq!(store.bytes_read(), 4);
    }

    #[test]
    fn missing_and_delete() {
        let store = BlockStore::default();
        assert!(store.read("nope").is_none());
        store.write("x", b"1");
        assert!(store.delete("x"));
        assert!(!store.delete("x"));
        assert!(store.list().is_empty());
    }

    #[test]
    fn overwrite_replaces_content() {
        let store = BlockStore::new(8, 1);
        store.write("f", b"first");
        store.write("f", b"second!");
        assert_eq!(store.read("f").unwrap(), b"second!".to_vec());
    }

    #[test]
    fn write_many_and_delete_prefix() {
        let store = BlockStore::new(8, 2);
        store.write_many(&[
            ("ds/a/header".to_string(), vec![1u8; 4]),
            ("ds/a/seg-0".to_string(), vec![2u8; 10]),
            ("ds/a/seg-1".to_string(), vec![3u8; 10]),
        ]);
        store.write("ds/ab", b"sibling");
        assert_eq!(store.bytes_written(), (4 + 10 + 10 + 7) * 2);
        assert_eq!(store.read("ds/a/seg-1").unwrap(), vec![3u8; 10]);
        // The trailing-slash prefix removes only the directory's files.
        assert_eq!(store.delete_prefix("ds/a/"), 3);
        assert!(store.read("ds/a/header").is_none());
        assert_eq!(store.read("ds/ab").unwrap(), b"sibling".to_vec());
        assert_eq!(store.delete_prefix("ds/a/"), 0);
    }

    #[test]
    fn empty_file() {
        let store = BlockStore::default();
        store.write("empty", b"");
        assert_eq!(store.read("empty").unwrap(), Vec::<u8>::new());
        assert_eq!(store.num_blocks("empty"), Some(0));
    }
}
