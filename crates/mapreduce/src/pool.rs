//! Reusable scoped worker pool and the parallel-for-blocks primitive.
//!
//! The engine's map and reduce phases both follow the same shape: spawn
//! a fixed number of scoped workers, let each pull work-item indices off
//! a [`kernel::WorkQueue`](crate::kernel::WorkQueue), and combine the
//! per-item results in a **fixed item order** so the job output never
//! depends on scheduling. This module extracts that machinery so the
//! serial-path kernels (`em_fit`'s E-step blocks, the columnar binning
//! scan) can run on the same pool with the same determinism guarantee
//! (DESIGN.md §11).
//!
//! Determinism contract of [`parallel_for_blocks`]: the worker closure
//! must be a pure function of the block index (per-worker scratch state
//! may be reused across blocks but must not carry semantic state), and
//! the caller merges the returned partials in block-index order. Under
//! that contract the result is **bit-identical for every thread count**,
//! including the inline `threads <= 1` path — the serial path is the
//! parallel path with one worker, not a different algorithm.

use std::panic::{catch_unwind, AssertUnwindSafe};

use parking_lot::Mutex;

use crate::kernel::{BlockPartials, WorkQueue};

/// A worker panicked inside [`run_workers`]; the payload was discarded,
/// so callers map this to their own error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic;

/// Resolves a configured thread count: `0` means "all available cores"
/// (the `MrConfig::threads` convention), anything else is taken
/// literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
}

/// Runs `workers` copies of `worker` on scoped threads (each receives
/// its worker index) and joins them all. A panicking worker does not
/// tear down the process; it surfaces as `Err(WorkerPanic)` after every
/// other worker finished — the engine maps this to `MrError::Panicked`.
///
/// Workers are always spawned, even for `workers == 1`, so the panic
/// containment is uniform; use [`parallel_for_blocks`] when an inline
/// serial fast path is wanted instead.
pub fn run_workers<F>(workers: usize, worker: F) -> Result<(), WorkerPanic>
where
    F: Fn(usize) + Sync,
{
    run_workers_capturing(workers, worker).map_or(Ok(()), |_| Err(WorkerPanic))
}

/// [`run_workers`] returning the first panic payload, so callers can
/// either map it to an error ([`run_workers`]) or re-raise it on the
/// calling thread ([`parallel_for_blocks_with`]). Panics are caught
/// *inside* each worker — containment does not rely on the scope's
/// join behaviour — and the non-panicking workers always run to
/// completion.
fn run_workers_capturing<F>(workers: usize, worker: F) -> Option<Box<dyn std::any::Any + Send>>
where
    F: Fn(usize) + Sync,
{
    let payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    // The scope result is deliberately ignored: every panic is already
    // caught inside the worker, so the scope cannot observe one.
    let _ = crossbeam::thread::scope(|s| {
        for w in 0..workers.max(1) {
            let (worker, payload) = (&worker, &payload);
            s.spawn(move |_| {
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| worker(w))) {
                    payload.lock().get_or_insert(p);
                }
            });
        }
    });
    payload.into_inner()
}

/// Runs `work` once per block index in `0..num_blocks` and returns the
/// results in block-index order; see the module docs for the
/// determinism contract. `make_state` builds one private scratch state
/// per worker (Cholesky/softmax buffers, projection scratch, …), handed
/// mutably to every block that worker claims.
///
/// The effective worker count is
/// `min(threads, num_blocks, available cores)` — requesting more
/// workers than the host has cores would only add scheduling overhead,
/// and under the determinism contract the output cannot depend on the
/// worker count, so the cap is unobservable in results. With one
/// effective worker (or fewer than two blocks) everything runs inline
/// on the caller's thread with a single state and no spawn; otherwise
/// scoped workers claim blocks off a [`WorkQueue`] and commit partials
/// into a [`BlockPartials`] board. Worker panics are re-raised on the
/// caller's thread, matching the inline path's behavior.
pub fn parallel_for_blocks_with<S, T, FS, FW>(
    threads: usize,
    num_blocks: usize,
    make_state: FS,
    work: FW,
) -> Vec<T>
where
    T: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.min(num_blocks).min(resolve_threads(0));
    if workers <= 1 || num_blocks <= 1 {
        let mut state = make_state();
        return (0..num_blocks).map(|b| work(&mut state, b)).collect();
    }
    parallel_for_blocks_pooled(workers, num_blocks, make_state, work)
}

/// The multi-worker path of [`parallel_for_blocks_with`], taking the
/// final worker count directly (tests call this to exercise the
/// claim/commit machinery even on single-core hosts, where the public
/// entry point would collapse to the inline path).
fn parallel_for_blocks_pooled<S, T, FS, FW>(
    workers: usize,
    num_blocks: usize,
    make_state: FS,
    work: FW,
) -> Vec<T>
where
    T: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, usize) -> T + Sync,
{
    let queue = WorkQueue::new(num_blocks);
    let partials = BlockPartials::new(num_blocks);
    let payload = run_workers_capturing(workers, |_| {
        let mut state = make_state();
        while let Some(block) = queue.claim() {
            partials.commit(block, work(&mut state, block));
        }
    });
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
    partials.into_ordered()
}

/// [`parallel_for_blocks_with`] without per-worker scratch state.
pub fn parallel_for_blocks<T, F>(threads: usize, num_blocks: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_for_blocks_with(threads, num_blocks, || (), |(), b| work(b))
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_block_order_for_any_thread_count() {
        for threads in [1, 2, 8] {
            let out = parallel_for_blocks(threads, 37, |b| b * b);
            assert_eq!(out, (0..37).map(|b| b * b).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn zero_blocks_yield_empty_result() {
        assert_eq!(parallel_for_blocks(4, 0, |b| b), Vec::<usize>::new());
    }

    #[test]
    fn each_worker_gets_private_state() {
        // Every worker counts the blocks it processed in its own state;
        // the per-block results must still cover each block exactly once.
        let out = parallel_for_blocks_with(
            4,
            100,
            || 0usize,
            |seen, b| {
                *seen += 1;
                (b, *seen)
            },
        );
        assert_eq!(out.len(), 100);
        for (i, (b, seen)) in out.iter().enumerate() {
            assert_eq!(*b, i);
            assert!(*seen >= 1);
        }
    }

    #[test]
    fn run_workers_joins_all() {
        let hits = AtomicUsize::new(0);
        run_workers(5, |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(hits.into_inner(), 5);
    }

    #[test]
    fn run_workers_surfaces_panics_as_error() {
        let result = run_workers(3, |w| {
            if w == 1 {
                panic!("boom");
            }
        });
        assert_eq!(result, Err(WorkerPanic));
    }

    #[test]
    fn parallel_path_propagates_panics_like_serial() {
        // Drive the pooled path directly: the public entry point may
        // collapse to the inline path on single-core hosts.
        let caught = std::panic::catch_unwind(|| {
            parallel_for_blocks_pooled(
                4,
                16,
                || (),
                |(), b| {
                    if b == 7 {
                        panic!("block exploded");
                    }
                    b
                },
            )
        });
        assert!(caught.is_err());
        let caught = std::panic::catch_unwind(|| {
            parallel_for_blocks(4, 16, |b| {
                if b == 7 {
                    panic!("block exploded");
                }
                b
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn pooled_path_returns_block_order_with_private_state() {
        let out = parallel_for_blocks_pooled(
            4,
            100,
            || 0usize,
            |seen, b| {
                *seen += 1;
                (b, *seen)
            },
        );
        assert_eq!(out.len(), 100);
        for (i, (b, seen)) in out.iter().enumerate() {
            assert_eq!(*b, i);
            assert!(*seen >= 1);
        }
    }

    #[test]
    fn resolve_threads_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
