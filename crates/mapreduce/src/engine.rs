//! The job runner: split → map (thread pool, retries) → shuffle → reduce.

use crate::api::{Combiner, Emitter, Mapper, Reducer};
use crate::distrib::backend::{Backend, BackendChoice, BackendError, MapOutput, StageSpec};
use crate::distrib::wire::{decode_from_slice, encode_to_vec, Wire};
use crate::fault::{FaultPlan, StragglerPlan};
use crate::kernel::{BlockPartials, CommitBoard, CounterLedger, ShuffleBuckets, WorkQueue};
use crate::metrics::{ClusterMetrics, DagMetrics, JobMetrics};
use crate::weight::Weighable;
use parking_lot::Mutex;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Engine configuration — the "cluster shape".
#[derive(Debug, Clone)]
pub struct MrConfig {
    /// Number of reduce partitions (the paper uses 112 on its cluster).
    pub num_reducers: usize,
    /// Records per input split (Hadoop: one split ≈ one HDFS block).
    pub split_size: usize,
    /// Worker threads executing tasks; `0` means all available cores.
    pub threads: usize,
    /// Optional fault injection plan.
    pub fault: Option<FaultPlan>,
    /// Optional straggler (slow node) injection plan.
    pub straggler: Option<StragglerPlan>,
    /// Speculative execution: once the task queue drains, idle workers
    /// launch backup attempts of still-running tasks; the first attempt
    /// to finish commits, and the loser is cancelled (Hadoop's backup
    /// tasks).
    pub speculative: bool,
    /// Maximum attempts per map task before the job aborts (Hadoop default: 4).
    pub max_attempts: usize,
    /// Where shuffle bytes live between map and reduce (see
    /// [`crate::distrib`]). The default honours the `P3C_BACKEND`
    /// environment variable and falls back to the in-process engine.
    pub backend: BackendChoice,
}

impl Default for MrConfig {
    fn default() -> Self {
        Self {
            num_reducers: 4,
            split_size: 8192,
            threads: 0,
            fault: None,
            straggler: None,
            speculative: false,
            max_attempts: 4,
            backend: BackendChoice::default(),
        }
    }
}

impl MrConfig {
    fn effective_threads(&self) -> usize {
        crate::pool::resolve_threads(self.threads)
    }
}

/// Result of one job: the reducer (or map-only) output plus metrics.
#[derive(Debug)]
pub struct JobOutput<O> {
    /// Output records, in reducer key order (or map emission order).
    pub output: Vec<O>,
    /// The job's execution counters.
    pub metrics: JobMetrics,
}

/// Job execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// A map task exhausted its attempts.
    TaskFailed {
        /// The job the task belonged to.
        job: String,
        /// Index of the failing map task.
        task: usize,
        /// How many attempts were made.
        attempts: usize,
    },
    /// A DAG-scheduled pipeline failed at the named node (see
    /// [`crate::dag`]); `message` is the rendered scheduler error.
    Dag {
        /// The failing DAG node.
        node: String,
        /// The rendered scheduler error.
        message: String,
    },
    /// A worker thread panicked inside user map or reduce code; the job
    /// is aborted rather than crashing the whole process.
    Panicked {
        /// The job being executed.
        job: String,
        /// The phase whose user code panicked (`"map"` or `"reduce"`).
        phase: String,
    },
    /// The shuffle backend failed in a way recovery could not fix
    /// (spawn failure, protocol break, or exhausted re-executions).
    Backend {
        /// The job being executed.
        job: String,
        /// The rendered backend error.
        message: String,
    },
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::TaskFailed {
                job,
                task,
                attempts,
            } => {
                write!(
                    f,
                    "job '{job}': map task {task} failed after {attempts} attempts"
                )
            }
            MrError::Dag { node, message } => {
                write!(f, "DAG node '{node}': {message}")
            }
            MrError::Panicked { job, phase } => {
                write!(f, "job '{job}': {phase} phase panicked in user code")
            }
            MrError::Backend { job, message } => {
                write!(f, "job '{job}': shuffle backend failed: {message}")
            }
        }
    }
}

impl std::error::Error for MrError {}

/// The in-process MapReduce engine.
///
/// One engine models one cluster: it holds the configuration and a ledger
/// of metrics for every job it has run (see [`ClusterMetrics`]).
pub struct Engine {
    config: MrConfig,
    ledger: Mutex<ClusterMetrics>,
    backend: Arc<dyn Backend>,
    /// Engine-unique shuffle-stage ids for the distributed data plane.
    next_shuffle: AtomicU64,
}

impl Engine {
    /// Engine with an explicit configuration.
    pub fn new(config: MrConfig) -> Self {
        let backend = config.backend.build();
        Self {
            config,
            ledger: Mutex::new(ClusterMetrics::new()),
            backend,
            next_shuffle: AtomicU64::new(0),
        }
    }

    /// Engine over an explicit backend instance, bypassing
    /// [`MrConfig::backend`] — for tests and embedders that construct
    /// backends directly (e.g. a shuffle service with an injected loss
    /// plan).
    pub fn with_backend(config: MrConfig, backend: Arc<dyn Backend>) -> Self {
        Self {
            config,
            ledger: Mutex::new(ClusterMetrics::new()),
            backend,
            next_shuffle: AtomicU64::new(0),
        }
    }

    /// The engine's shuffle backend.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// Engine with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(MrConfig::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MrConfig {
        &self.config
    }

    /// Snapshot of all job metrics recorded so far.
    pub fn cluster_metrics(&self) -> ClusterMetrics {
        self.ledger.lock().clone()
    }

    /// Clears the metrics ledger.
    pub fn reset_metrics(&self) {
        self.ledger.lock().reset();
    }

    /// Records a DAG run's metrics in the ledger (called by
    /// [`crate::dag::DagScheduler`]).
    pub(crate) fn record_dag(&self, metrics: DagMetrics) {
        self.ledger.lock().record_dag(metrics);
    }

    /// Charges broadcast bytes for side data shipped to every map task of
    /// the *next* job over `input_len` records. Call before `run` when a
    /// job uses the distributed cache.
    fn broadcast_cost(&self, cache_bytes: usize, num_splits: usize) -> u64 {
        (cache_bytes * num_splits) as u64
    }

    /// Runs a full map–shuffle–reduce job.
    pub fn run<I, K, V, O, M, R>(
        &self,
        name: &str,
        input: &[I],
        mapper: &M,
        reducer: &R,
    ) -> Result<JobOutput<O>, MrError>
    where
        I: Sync,
        K: Ord + Hash + Clone + Send + Weighable + Wire,
        V: Send + Weighable + Wire,
        O: Send,
        M: Mapper<I, K, V>,
        R: Reducer<K, V, O>,
    {
        self.run_inner(name, input, mapper, None::<&NoCombiner>, reducer, 0)
    }

    /// Runs a job with a map-side combiner.
    pub fn run_with_combiner<I, K, V, O, M, C, R>(
        &self,
        name: &str,
        input: &[I],
        mapper: &M,
        combiner: &C,
        reducer: &R,
    ) -> Result<JobOutput<O>, MrError>
    where
        I: Sync,
        K: Ord + Hash + Clone + Send + Weighable + Wire,
        V: Send + Weighable + Wire,
        O: Send,
        M: Mapper<I, K, V>,
        C: Combiner<K, V>,
        R: Reducer<K, V, O>,
    {
        self.run_inner(name, input, mapper, Some(combiner), reducer, 0)
    }

    /// Runs a job whose mapper reads broadcast side data of the given byte
    /// size (charged as `bytes × map_tasks` to the job's broadcast cost).
    pub fn run_with_cache<I, K, V, O, M, R>(
        &self,
        name: &str,
        input: &[I],
        cache_bytes: usize,
        mapper: &M,
        reducer: &R,
    ) -> Result<JobOutput<O>, MrError>
    where
        I: Sync,
        K: Ord + Hash + Clone + Send + Weighable + Wire,
        V: Send + Weighable + Wire,
        O: Send,
        M: Mapper<I, K, V>,
        R: Reducer<K, V, O>,
    {
        self.run_inner(
            name,
            input,
            mapper,
            None::<&NoCombiner>,
            reducer,
            cache_bytes,
        )
    }

    /// Runs a map-only job (Hadoop: zero reducers). The mapper's emitted
    /// *values* are the job output, concatenated in split order; keys are
    /// ignored (use `()`).
    pub fn run_map_only<I, O, M>(
        &self,
        name: &str,
        input: &[I],
        mapper: &M,
    ) -> Result<JobOutput<O>, MrError>
    where
        I: Sync,
        O: Send + Weighable,
        M: Mapper<I, (), O>,
    {
        self.run_map_only_with_cache(name, input, 0, mapper)
    }

    /// Map-only job with broadcast side data accounting.
    pub fn run_map_only_with_cache<I, O, M>(
        &self,
        name: &str,
        input: &[I],
        cache_bytes: usize,
        mapper: &M,
    ) -> Result<JobOutput<O>, MrError>
    where
        I: Sync,
        O: Send + Weighable,
        M: Mapper<I, (), O>,
    {
        // audit: time-ok — wall-clock feeds the map_wall metric only.
        let start = Instant::now();
        let mut metrics = JobMetrics::new(name);
        let splits: Vec<&[I]> = split_input(input, self.config.split_size);
        metrics.map_tasks = splits.len() as u64;
        metrics.map_input_records = input.len() as u64;
        metrics.broadcast_bytes = self.broadcast_cost(cache_bytes, splits.len());

        let shared = MapPhaseShared::new(splits.len());
        let outputs: ShuffleBuckets<O> = ShuffleBuckets::new(splits.len());

        let task_error = run_map_phase(
            &self.config,
            name,
            &splits,
            &shared,
            |idx, emitter_pairs: Vec<((), O)>| {
                let values: Vec<O> = emitter_pairs.into_iter().map(|(_, v)| v).collect();
                outputs.commit(idx, values);
            },
            mapper,
        );
        if let Some(err) = task_error {
            return Err(err);
        }

        let output: Vec<O> = outputs.take_ordered();
        shared.fill_metrics(&mut metrics);
        metrics.output_records = output.len() as u64;
        metrics.map_wall = start.elapsed();
        self.ledger.lock().record(metrics.clone());
        Ok(JobOutput { output, metrics })
    }

    fn run_inner<I, K, V, O, M, C, R>(
        &self,
        name: &str,
        input: &[I],
        mapper: &M,
        combiner: Option<&C>,
        reducer: &R,
        cache_bytes: usize,
    ) -> Result<JobOutput<O>, MrError>
    where
        I: Sync,
        K: Ord + Hash + Clone + Send + Weighable + Wire,
        V: Send + Weighable + Wire,
        O: Send,
        M: Mapper<I, K, V>,
        C: Combiner<K, V>,
        R: Reducer<K, V, O>,
    {
        // audit: time-ok — wall-clock feeds the map_wall metric only.
        let map_start = Instant::now();
        let mut metrics = JobMetrics::new(name);
        let num_reducers = self.config.num_reducers.max(1);
        let splits: Vec<&[I]> = split_input(input, self.config.split_size);
        metrics.map_tasks = splits.len() as u64;
        metrics.map_input_records = input.len() as u64;
        metrics.broadcast_bytes = self.broadcast_cost(cache_bytes, splits.len());

        // Per-reducer, per-split partitions. Keeping one bucket per map
        // task and concatenating in split order makes the value order a
        // reducer sees independent of task *commit* order, so jobs with
        // order-sensitive float accumulation are byte-deterministic run
        // to run (and serial-vs-DAG driver comparisons stay exact). The
        // property is model-checked on [`ShuffleBuckets`] itself (see
        // `crate::kernel` and the `loom_models` test).
        let partitions: Vec<ShuffleBuckets<(K, V)>> = (0..num_reducers)
            .map(|_| ShuffleBuckets::new(splits.len()))
            .collect();
        let shuffle_records = AtomicU64::new(0);
        let shuffle_bytes = AtomicU64::new(0);
        let combine_in = AtomicU64::new(0);
        let combine_out = AtomicU64::new(0);

        let shared = MapPhaseShared::new(splits.len());
        let task_error = run_map_phase(
            &self.config,
            name,
            &splits,
            &shared,
            |idx, pairs: Vec<(K, V)>| {
                // Partition by key hash; optionally combine per partition
                // (shared with lost-output recovery on the distributed
                // path, which must rebuild identical partitions).
                let (parts, c_in, c_out) = partition_and_combine(pairs, num_reducers, combiner);
                if c_in > 0 {
                    // The combiner runs before shuffle metering, so
                    // shuffle_records/bytes below reflect what actually
                    // crosses the network (post-combine).
                    // audit: relaxed-ok — monotonic metric counter.
                    combine_in.fetch_add(c_in, Ordering::Relaxed);
                    // audit: relaxed-ok — monotonic metric counter.
                    combine_out.fetch_add(c_out, Ordering::Relaxed);
                }
                for (p, part) in parts.into_iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    let mut recs = 0u64;
                    let mut bytes = 0u64;
                    for (k, v) in &part {
                        recs += 1;
                        bytes += (k.weight() + v.weight()) as u64;
                    }
                    // audit: relaxed-ok — monotonic metric counter.
                    shuffle_records.fetch_add(recs, Ordering::Relaxed);
                    // audit: relaxed-ok — monotonic metric counter.
                    shuffle_bytes.fetch_add(bytes, Ordering::Relaxed);
                    partitions[p].commit(idx, part);
                }
            },
            mapper,
        );
        if let Some(err) = task_error {
            return Err(err);
        }
        shared.fill_metrics(&mut metrics);
        metrics.combine_input_records = combine_in.into_inner();
        metrics.combine_output_records = combine_out.into_inner();
        metrics.shuffle_records = shuffle_records.into_inner();
        metrics.shuffle_bytes = shuffle_bytes.into_inner();
        metrics.map_wall = map_start.elapsed();

        // ------------------------------------------------------- reduce --
        // audit: time-ok — wall-clock feeds the reduce_wall metric only.
        let reduce_start = Instant::now();
        let reduce_result = if self.backend.is_distributed() {
            // Distributed data plane: encode each map task's partitions
            // with the exact-round-trip Wire codec, submit them to the
            // backend, and gather each reducer's input by fetching the
            // blobs back in map order — the same slot order
            // `take_ordered` concatenates in, so the pairs a reducer
            // sees are identical to the in-memory path's.
            // audit: relaxed-ok — monotonic id counter; uniqueness only.
            let shuffle_id = self.next_shuffle.fetch_add(1, Ordering::Relaxed);
            let spec = StageSpec {
                shuffle_id,
                job: name.to_string(),
                num_maps: splits.len(),
                num_reducers,
            };
            let mut per_reducer: Vec<Vec<Vec<(K, V)>>> =
                partitions.iter().map(|b| b.take_slots()).collect();
            let mut map_outputs: Vec<MapOutput> = Vec::with_capacity(splits.len());
            for m in 0..splits.len() {
                let parts: Vec<Vec<u8>> = per_reducer
                    .iter_mut()
                    .map(|slots| encode_to_vec(&std::mem::take(&mut slots[m])))
                    .collect();
                map_outputs.push(MapOutput {
                    map_id: m,
                    partitions: parts,
                });
            }
            drop(per_reducer);
            let backend_err = |e: &BackendError| MrError::Backend {
                job: name.to_string(),
                message: e.to_string(),
            };
            if let Err(e) = self.backend.submit_stage(&spec, map_outputs) {
                return Err(backend_err(&e));
            }
            // Serializes lost-map re-executions. Mappers and the
            // partitioner are deterministic, so a duplicate recovery of
            // the same map would rebuild identical bytes; one at a time
            // is still cheaper and keeps retry accounting readable.
            let recovery = Mutex::new(());
            let result = self.reduce_partitions(name, num_reducers, reducer, |p| {
                let mut pairs: Vec<(K, V)> = Vec::new();
                for m in 0..spec.num_maps {
                    let mut recoveries = 0usize;
                    let bytes = loop {
                        match self.backend.fetch_shuffle(&spec, m, p) {
                            Ok(bytes) => break bytes,
                            Err(BackendError::Lost { map_id }) => {
                                recoveries += 1;
                                if recoveries > self.config.max_attempts {
                                    return Err(MrError::Backend {
                                        job: name.to_string(),
                                        message: format!(
                                            "map {map_id} output lost and re-execution \
                                             exhausted {} attempts",
                                            self.config.max_attempts
                                        ),
                                    });
                                }
                                let _one_at_a_time = recovery.lock();
                                // Re-execute the lost map task; the
                                // deterministic pipeline rebuilds the
                                // exact partitions the worker lost.
                                let mut emitter = Emitter::new();
                                mapper.map_split(splits[map_id], &mut emitter);
                                let (emitted, _counters) = emitter.into_parts();
                                let (parts, _, _) =
                                    partition_and_combine(emitted, num_reducers, combiner);
                                let rebuilt = MapOutput {
                                    map_id,
                                    partitions: parts.iter().map(encode_to_vec).collect(),
                                };
                                self.backend
                                    .restore_map(&spec, rebuilt)
                                    .map_err(|e| backend_err(&e))?;
                            }
                            Err(e) => return Err(backend_err(&e)),
                        }
                    };
                    let part: Vec<(K, V)> =
                        decode_from_slice(&bytes).map_err(|e| MrError::Backend {
                            job: name.to_string(),
                            message: format!(
                                "shuffle partition (map {m}, reduce {p}) undecodable: {e}"
                            ),
                        })?;
                    pairs.extend(part);
                }
                Ok(pairs)
            });
            // Stage cleanup runs on success *and* failure; its stats
            // feed the job's data-plane metrics.
            let stats = self.backend.finish_stage(&spec);
            metrics.shuffle_fetches = stats.fetches;
            metrics.fetch_retries = stats.retries;
            metrics.worker_restarts = stats.worker_restarts;
            metrics.shuffle_bytes_moved = stats.bytes_stored + stats.bytes_fetched;
            result
        } else {
            // In-memory passthrough: drain each partition's buckets
            // directly, zero copies.
            self.reduce_partitions(name, num_reducers, reducer, |p| {
                Ok(partitions[p].take_ordered())
            })
        };
        let (output, groups_total, active_parts) = reduce_result?;
        metrics.reduce_tasks = active_parts;
        metrics.reduce_input_groups = groups_total;
        metrics.output_records = output.len() as u64;
        metrics.reduce_wall = reduce_start.elapsed();
        self.ledger.lock().record(metrics.clone());
        Ok(JobOutput { output, metrics })
    }

    /// Runs the reduce phase on the worker pool. `gather` produces
    /// partition `p`'s pairs in split order — from the in-memory shuffle
    /// or from backend fetches — and the sort-merge grouping plus the
    /// user reducer run identically either way, which is what keeps the
    /// backends byte-identical. Returns `(output, groups, active_parts)`.
    fn reduce_partitions<K, V, O, R, G>(
        &self,
        name: &str,
        num_reducers: usize,
        reducer: &R,
        gather: G,
    ) -> Result<(Vec<O>, u64, u64), MrError>
    where
        K: Ord + Send,
        V: Send,
        O: Send,
        R: Reducer<K, V, O>,
        G: Fn(usize) -> Result<Vec<(K, V)>, MrError> + Sync,
    {
        // Pool-of-workers over partitions: each worker claims partition
        // indices and commits (output, group count) partials that are
        // merged in partition order below — the metric totals are plain
        // sums over the ordered partials, so no shared counters needed.
        let part_queue = WorkQueue::new(num_reducers);
        let partials: BlockPartials<(Vec<O>, u64)> = BlockPartials::new(num_reducers);
        // First gather error wins; later partitions commit empty so the
        // partial board still completes.
        let gather_error: Mutex<Option<MrError>> = Mutex::new(None);
        let threads = self.config.effective_threads().min(num_reducers).max(1);
        let pool_result = crate::pool::run_workers(threads, |_| {
            while let Some(p) = part_queue.claim() {
                if gather_error.lock().is_some() {
                    partials.commit(p, (Vec::new(), 0));
                    continue;
                }
                let mut pairs = match gather(p) {
                    Ok(pairs) => pairs,
                    Err(e) => {
                        let mut slot = gather_error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        partials.commit(p, (Vec::new(), 0));
                        continue;
                    }
                };
                if pairs.is_empty() {
                    partials.commit(p, (Vec::new(), 0));
                    continue;
                }
                // Sort-merge grouping, as Hadoop's shuffle does. The
                // stable sort keeps same-key values in split order.
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                // Run-length grouping: measure each key's run on the
                // sorted slice, then hand the reducer exactly-sized
                // value buffers instead of growing one per group.
                let mut runs: Vec<usize> = Vec::new();
                let mut start = 0;
                for i in 1..pairs.len() {
                    if pairs[i].0 != pairs[start].0 {
                        runs.push(i - start);
                        start = i;
                    }
                }
                runs.push(pairs.len() - start);
                let mut out = Vec::new();
                let mut iter = pairs.into_iter();
                for &run in &runs {
                    let mut vs = Vec::with_capacity(run);
                    let mut key: Option<K> = None;
                    for (k, v) in iter.by_ref().take(run) {
                        key.get_or_insert(k);
                        vs.push(v);
                    }
                    // Runs have length >= 1 by construction, so the
                    // key is always present; an (impossible) empty
                    // run simply has nothing to reduce.
                    if let Some(key) = key {
                        reducer.reduce(&key, vs, &mut out);
                    }
                }
                partials.commit(p, (out, runs.len() as u64));
            }
        });
        if pool_result.is_err() {
            // A reducer panicked; surface it as a job failure instead of
            // tearing down the process.
            return Err(MrError::Panicked {
                job: name.to_string(),
                phase: "reduce".to_string(),
            });
        }
        if let Some(err) = gather_error.into_inner() {
            return Err(err);
        }

        let mut output = Vec::new();
        let mut groups_total = 0u64;
        let mut active_parts = 0u64;
        for (mut part_out, groups) in partials.into_ordered() {
            if groups > 0 {
                active_parts += 1;
            }
            groups_total += groups;
            output.append(&mut part_out);
        }
        Ok((output, groups_total, active_parts))
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Tears down spawned worker processes (no-op on local backends).
        self.backend.shutdown();
    }
}

/// Hash-partitions `pairs` into `num_reducers` exactly-sized buckets and
/// optionally combines each bucket. Shared by the map-task commit path
/// and the distributed backend's lost-output recovery, which must
/// rebuild partitions byte-identical to the originals. Returns the
/// buckets plus the combiner's (input, output) record counts.
fn partition_and_combine<K, V, C>(
    pairs: Vec<(K, V)>,
    num_reducers: usize,
    combiner: Option<&C>,
) -> (Vec<Vec<(K, V)>>, u64, u64)
where
    K: Ord + Hash,
    C: Combiner<K, V> + ?Sized,
{
    // Two passes: hash every key once and count, then move pairs into
    // exactly-sized buckets (no per-push growth).
    let assigned: Vec<u32> = pairs
        .iter()
        .map(|(k, _)| stable_partition(k, num_reducers) as u32)
        .collect();
    let mut counts = vec![0usize; num_reducers];
    for &p in &assigned {
        counts[p as usize] += 1;
    }
    let mut parts: Vec<Vec<(K, V)>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for ((k, v), &p) in pairs.into_iter().zip(&assigned) {
        parts[p as usize].push((k, v));
    }
    let mut combine_in = 0u64;
    let mut combine_out = 0u64;
    if let Some(c) = combiner {
        for part in parts.iter_mut() {
            if part.is_empty() {
                continue;
            }
            combine_in += part.len() as u64;
            let combined = combine_part(std::mem::take(part), c);
            combine_out += combined.len() as u64;
            *part = combined;
        }
    }
    (parts, combine_in, combine_out)
}

/// Placeholder combiner type for jobs without one.
enum NoCombiner {}
impl<K, V> Combiner<K, V> for NoCombiner {
    fn combine(&self, _: &K, _: Vec<V>) -> V {
        // An uninhabited receiver proves statically this is never called.
        match *self {}
    }
}

/// Chunks input into splits of at most `split_size` records.
fn split_input<I>(input: &[I], split_size: usize) -> Vec<&[I]> {
    if input.is_empty() {
        return Vec::new();
    }
    input.chunks(split_size.max(1)).collect()
}

/// Seed of the shuffle partitioner's hash. A fixed constant (rather than
/// per-process randomness) keeps key → partition layouts stable across
/// runs and builds, which reproducible metrics and the order-determinism
/// guarantee rely on.
const SHUFFLE_HASH_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Hash-partitions a key into `[0, parts)` with a build-stable
/// word-at-a-time multiply-rotate hasher (std's `DefaultHasher` has
/// unspecified stability across processes). Processing 8 bytes per round
/// beats byte-at-a-time FNV on the wide keys the pipelines shuffle.
pub fn stable_partition<K: Hash>(key: &K, parts: usize) -> usize {
    let mut h = FxStyleHasher::default();
    key.hash(&mut h);
    (h.finish() % parts as u64) as usize
}

/// FxHash-style mix: `state = (state.rotl(5) ^ word) * M` per 8-byte
/// word, seeded by [`SHUFFLE_HASH_SEED`]. Trailing bytes fold in as one
/// zero-padded word tagged with their length (the count occupies the
/// top byte, which at most 7 trailing bytes can never reach).
struct FxStyleHasher(u64);

impl Default for FxStyleHasher {
    fn default() -> Self {
        Self(SHUFFLE_HASH_SEED)
    }
}

impl FxStyleHasher {
    const M: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn add_word(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::M);
    }
}

impl Hasher for FxStyleHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(word));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_word(u64::from_le_bytes(word) | ((tail.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }
}

/// Groups a map task's per-partition output by key and applies the combiner.
fn combine_part<K, V, C>(mut part: Vec<(K, V)>, combiner: &C) -> Vec<(K, V)>
where
    K: Ord,
    C: Combiner<K, V> + ?Sized,
{
    part.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, V)> = Vec::new();
    let mut current: Option<(K, Vec<V>)> = None;
    for (k, v) in part {
        match &mut current {
            Some((ck, vs)) if *ck == k => vs.push(v),
            _ => {
                if let Some((ck, vs)) = current.take() {
                    let combined = combiner.combine(&ck, vs);
                    out.push((ck, combined));
                }
                current = Some((k, vec![v]));
            }
        }
    }
    if let Some((ck, vs)) = current {
        let combined = combiner.combine(&ck, vs);
        out.push((ck, combined));
    }
    out
}

// ---------------------------------------------------------------- map ---

/// Counters shared by all map tasks of one phase. The concurrency-bearing
/// pieces — task claiming, exactly-once commit, counter aggregation — are
/// the model-checked kernels of [`crate::kernel`].
struct MapPhaseShared {
    /// Ticket queue handing each split index to exactly one primary.
    queue: WorkQueue,
    /// One flag per task: set exactly once by the committing attempt.
    board: CommitBoard,
    out_records: AtomicU64,
    out_bytes: AtomicU64,
    failed_attempts: AtomicU64,
    speculative_attempts: AtomicU64,
    speculative_wins: AtomicU64,
    counters: CounterLedger,
    error: Mutex<Option<MrError>>,
}

impl MapPhaseShared {
    fn new(num_splits: usize) -> Self {
        Self {
            queue: WorkQueue::new(num_splits),
            board: CommitBoard::new(num_splits),
            out_records: AtomicU64::new(0),
            out_bytes: AtomicU64::new(0),
            failed_attempts: AtomicU64::new(0),
            speculative_attempts: AtomicU64::new(0),
            speculative_wins: AtomicU64::new(0),
            counters: CounterLedger::new(),
            error: Mutex::new(None),
        }
    }

    fn num_splits(&self) -> usize {
        self.board.len()
    }

    /// Claims the commit right for a task; the first attempt wins.
    fn try_commit(&self, idx: usize) -> bool {
        self.board.try_commit(idx)
    }

    fn is_done(&self, idx: usize) -> bool {
        self.board.is_done(idx)
    }

    fn all_done(&self) -> bool {
        self.board.all_done()
    }

    fn fill_metrics(&self, m: &mut JobMetrics) {
        // audit: relaxed-ok — single-threaded metric reads after the
        // phase's worker threads have been joined.
        m.map_output_records = self.out_records.load(Ordering::Relaxed);
        // audit: relaxed-ok — as above.
        m.map_output_bytes = self.out_bytes.load(Ordering::Relaxed);
        // audit: relaxed-ok — as above.
        m.failed_attempts = self.failed_attempts.load(Ordering::Relaxed);
        // audit: relaxed-ok — as above.
        m.speculative_attempts = self.speculative_attempts.load(Ordering::Relaxed);
        // audit: relaxed-ok — as above.
        m.speculative_wins = self.speculative_wins.load(Ordering::Relaxed);
        m.counters = self.counters.snapshot();
    }
}

/// Runs all map tasks on the worker pool; `commit` is invoked once per
/// split, by whichever attempt (primary or speculative backup) finishes
/// first.
fn run_map_phase<I, K, V, M, F>(
    config: &MrConfig,
    job_name: &str,
    splits: &[&[I]],
    shared: &MapPhaseShared,
    commit: F,
    mapper: &M,
) -> Option<MrError>
where
    I: Sync,
    K: Weighable + Send,
    V: Weighable + Send,
    M: Mapper<I, K, V>,
    F: Fn(usize, Vec<(K, V)>) + Sync,
{
    if splits.is_empty() {
        return None;
    }
    let threads = config.effective_threads().min(splits.len()).max(1);
    let pool_result = crate::pool::run_workers(threads, |_| {
        // Primary pass: pull tasks off the queue.
        loop {
            if shared.error.lock().is_some() {
                return;
            }
            let Some(idx) = shared.queue.claim() else {
                break;
            };
            run_attempt(config, job_name, splits, shared, &commit, mapper, idx, true);
        }
        // Speculative pass: back up still-running tasks.
        if !config.speculative {
            return;
        }
        loop {
            if shared.all_done() || shared.error.lock().is_some() {
                return;
            }
            let mut launched = false;
            for idx in 0..shared.num_splits() {
                if shared.is_done(idx) {
                    continue;
                }
                // audit: relaxed-ok — monotonic metric counter.
                shared.speculative_attempts.fetch_add(1, Ordering::Relaxed);
                run_attempt(
                    config, job_name, splits, shared, &commit, mapper, idx, false,
                );
                launched = true;
            }
            if !launched {
                // Everything is claimed but not yet flagged done;
                // yield briefly.
                std::thread::yield_now();
            }
        }
    });
    if pool_result.is_err() {
        // A mapper panicked; fail the job rather than the process.
        return Some(MrError::Panicked {
            job: job_name.to_string(),
            phase: "map".to_string(),
        });
    }
    shared.error.lock().clone()
}

/// One task attempt. Primaries are subject to fault and straggler
/// injection; speculative backups run "on a healthy node" (no injection).
/// Whichever attempt finishes first commits; losers discard their output.
#[allow(clippy::too_many_arguments)]
fn run_attempt<I, K, V, M, F>(
    config: &MrConfig,
    job_name: &str,
    splits: &[&[I]],
    shared: &MapPhaseShared,
    commit: &F,
    mapper: &M,
    idx: usize,
    primary: bool,
) where
    I: Sync,
    K: Weighable + Send,
    V: Weighable + Send,
    M: Mapper<I, K, V>,
    F: Fn(usize, Vec<(K, V)>) + Sync,
{
    if shared.is_done(idx) {
        return;
    }
    let max_attempts = if primary { config.max_attempts } else { 1 };
    for attempt in 0..max_attempts {
        if shared.is_done(idx) {
            return;
        }
        if primary {
            if let Some(plan) = &config.fault {
                if plan.should_fail(job_name, idx, attempt) {
                    // audit: relaxed-ok — monotonic metric counter.
                    shared.failed_attempts.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            if let Some(plan) = &config.straggler {
                if plan.should_straggle(job_name, idx) {
                    // Cancellable slow-node delay: sleep in slices and bail
                    // out as soon as a backup commits the task.
                    // audit: time-ok — injected test delay; task *output* is
                    // unaffected, only which attempt commits first.
                    let deadline = Instant::now() + std::time::Duration::from_millis(plan.delay_ms);
                    // audit: time-ok — as above.
                    while Instant::now() < deadline {
                        if shared.is_done(idx) {
                            return;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                }
            }
        }
        let mut emitter = Emitter::new();
        mapper.map_split(splits[idx], &mut emitter);
        // First finisher commits; the loser's work is discarded (its
        // record/byte counters too — committed work only, like Hadoop's
        // "killed speculative attempt" accounting).
        if !shared.try_commit(idx) {
            return;
        }
        if !primary {
            // audit: relaxed-ok — monotonic metric counter.
            shared.speculative_wins.fetch_add(1, Ordering::Relaxed);
        }
        // audit: relaxed-ok — monotonic metric counter.
        shared
            .out_records
            .fetch_add(emitter.records(), Ordering::Relaxed);
        // audit: relaxed-ok — monotonic metric counter.
        shared
            .out_bytes
            .fetch_add(emitter.bytes(), Ordering::Relaxed);
        let (pairs, counters) = emitter.into_parts();
        shared.counters.merge(counters);
        commit(idx, pairs);
        return;
    }
    // Primary exhausted its attempts without committing; unless a backup
    // rescued the task meanwhile, the job fails.
    if primary && !shared.is_done(idx) {
        *shared.error.lock() = Some(MrError::TaskFailed {
            job: job_name.to_string(),
            task: idx,
            attempts: config.max_attempts,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    struct TokenMapper;
    impl Mapper<String, String, u64> for TokenMapper {
        fn map(&self, line: &String, out: &mut Emitter<String, u64>) {
            for tok in line.split_whitespace() {
                out.emit(tok.to_string(), 1);
            }
        }
    }

    struct SumReducer;
    impl Reducer<String, u64, (String, u64)> for SumReducer {
        fn reduce(&self, key: &String, values: Vec<u64>, out: &mut Vec<(String, u64)>) {
            out.push((key.clone(), values.into_iter().sum()));
        }
    }

    struct SumCombiner;
    impl Combiner<String, u64> for SumCombiner {
        fn combine(&self, _: &String, values: Vec<u64>) -> u64 {
            values.into_iter().sum()
        }
    }

    fn lines() -> Vec<String> {
        vec![
            "the quick brown fox".to_string(),
            "the lazy dog".to_string(),
            "the quick dog".to_string(),
        ]
    }

    fn counts(out: Vec<(String, u64)>) -> BTreeMap<String, u64> {
        out.into_iter().collect()
    }

    #[test]
    fn word_count_end_to_end() {
        let engine = Engine::new(MrConfig {
            split_size: 1,
            ..MrConfig::default()
        });
        let res = engine
            .run("wc", &lines(), &TokenMapper, &SumReducer)
            .unwrap();
        let c = counts(res.output);
        assert_eq!(c["the"], 3);
        assert_eq!(c["quick"], 2);
        assert_eq!(c["dog"], 2);
        assert_eq!(c["fox"], 1);
        assert_eq!(res.metrics.map_tasks, 3);
        assert_eq!(res.metrics.map_input_records, 3);
        assert_eq!(res.metrics.map_output_records, 10);
        assert_eq!(res.metrics.reduce_input_groups, 6);
    }

    #[test]
    fn combiner_reduces_shuffle_volume_not_results() {
        let cfg = MrConfig {
            split_size: 1,
            ..MrConfig::default()
        };
        let plain = Engine::new(cfg.clone());
        let combined = Engine::new(cfg);
        let a = plain
            .run("wc", &lines(), &TokenMapper, &SumReducer)
            .unwrap();
        let b = combined
            .run_with_combiner("wc-c", &lines(), &TokenMapper, &SumCombiner, &SumReducer)
            .unwrap();
        assert_eq!(counts(a.output), counts(b.output));
        assert!(b.metrics.shuffle_records <= a.metrics.shuffle_records);
        // "the" appears twice in split 3? No -- each split has unique words,
        // so equality is possible; force a case with duplicates per split:
        let doubled = vec!["a a a a".to_string()];
        let e1 = Engine::new(MrConfig::default());
        let e2 = Engine::new(MrConfig::default());
        let r1 = e1.run("p", &doubled, &TokenMapper, &SumReducer).unwrap();
        let r2 = e2
            .run_with_combiner("c", &doubled, &TokenMapper, &SumCombiner, &SumReducer)
            .unwrap();
        assert_eq!(counts(r1.output), counts(r2.output));
        assert_eq!(r1.metrics.shuffle_records, 4);
        assert_eq!(r2.metrics.shuffle_records, 1);
        // Shuffle bytes are metered *after* the combiner: one record of
        // ("a": 4+1 bytes, u64: 8 bytes) = 13 bytes crosses the network,
        // not the 4 × 13 = 52 pre-combine bytes.
        assert_eq!(r1.metrics.shuffle_bytes, 52);
        assert_eq!(r2.metrics.shuffle_bytes, 13);
        // And the combine counters expose the 4 → 1 reduction.
        assert_eq!(r1.metrics.combine_input_records, 0);
        assert_eq!(r1.metrics.combine_output_records, 0);
        assert_eq!(r2.metrics.combine_input_records, 4);
        assert_eq!(r2.metrics.combine_output_records, 1);
    }

    #[test]
    fn map_only_preserves_split_order() {
        let engine = Engine::new(MrConfig {
            split_size: 2,
            ..MrConfig::default()
        });
        let input: Vec<u64> = (0..10).collect();
        let mapper = |r: &u64, out: &mut Emitter<(), u64>| out.emit((), r * 2);
        let res = engine.run_map_only("double", &input, &mapper).unwrap();
        assert_eq!(res.output, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(res.metrics.map_tasks, 5);
        assert_eq!(res.metrics.output_records, 10);
    }

    #[test]
    fn grouped_key_emission_order_is_pinned() {
        // The determinism contract: reduce output lists grouped keys in
        // partition-slot order, key-sorted within each partition — never
        // in mapper emission order, and never varying with the worker
        // count. With one reducer that collapses to "globally
        // key-sorted", which this test pins exactly.
        let scrambled = vec![
            "zeta alpha".to_string(),
            "mu zeta omega".to_string(),
            "alpha mu beta".to_string(),
        ];
        let expected: Vec<(String, u64)> = vec![
            ("alpha".to_string(), 2),
            ("beta".to_string(), 1),
            ("mu".to_string(), 2),
            ("omega".to_string(), 1),
            ("zeta".to_string(), 2),
        ];
        for threads in [1, 2, 8] {
            let engine = Engine::new(MrConfig {
                num_reducers: 1,
                split_size: 1,
                threads,
                ..MrConfig::default()
            });
            let res = engine
                .run("order-pin", &scrambled, &TokenMapper, &SumReducer)
                .unwrap();
            assert_eq!(res.output, expected, "threads={threads}");
        }
        // Multi-partition runs must agree with each other byte-for-byte
        // regardless of scheduling (key→partition assignment is a pure
        // function of the key).
        let reference = Engine::new(MrConfig {
            num_reducers: 4,
            split_size: 1,
            threads: 1,
            ..MrConfig::default()
        })
        .run("order-pin-4", &scrambled, &TokenMapper, &SumReducer)
        .unwrap()
        .output;
        for threads in [2, 8] {
            let res = Engine::new(MrConfig {
                num_reducers: 4,
                split_size: 1,
                threads,
                ..MrConfig::default()
            })
            .run("order-pin-4", &scrambled, &TokenMapper, &SumReducer)
            .unwrap();
            assert_eq!(res.output, reference, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let engine = Engine::with_defaults();
        let input: Vec<String> = vec![];
        let res = engine
            .run("empty", &input, &TokenMapper, &SumReducer)
            .unwrap();
        assert!(res.output.is_empty());
        assert_eq!(res.metrics.map_tasks, 0);
    }

    #[test]
    fn fault_injection_retries_and_succeeds() {
        let cfg = MrConfig {
            split_size: 1,
            fault: Some(FaultPlan::new(0.4, 1234)),
            max_attempts: 10,
            ..MrConfig::default()
        };
        let engine = Engine::new(cfg);
        let input: Vec<u64> = (0..200).collect();
        let mapper = |r: &u64, out: &mut Emitter<u64, u64>| out.emit(r % 7, *r);
        let reducer = |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| {
            out.push((*k, vs.into_iter().sum()));
        };
        let res = engine.run("faulty", &input, &mapper, &reducer).unwrap();
        assert!(
            res.metrics.failed_attempts > 0,
            "fault plan should have struck"
        );
        let total: u64 = res.output.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, (0..200).sum::<u64>());
    }

    #[test]
    fn certain_failure_aborts_job() {
        let cfg = MrConfig {
            fault: Some(FaultPlan::new(1.0, 1)),
            max_attempts: 3,
            ..MrConfig::default()
        };
        let engine = Engine::new(cfg);
        let input: Vec<u64> = (0..10).collect();
        let mapper = |r: &u64, out: &mut Emitter<u64, u64>| out.emit(*r, 1);
        let reducer = |k: &u64, _vs: Vec<u64>, out: &mut Vec<u64>| out.push(*k);
        let err = engine.run("doomed", &input, &mapper, &reducer).unwrap_err();
        assert!(matches!(err, MrError::TaskFailed { attempts: 3, .. }));
    }

    #[test]
    fn deterministic_output_across_runs() {
        let mk = || {
            let engine = Engine::new(MrConfig {
                split_size: 3,
                threads: 4,
                ..MrConfig::default()
            });
            let input: Vec<u64> = (0..100).collect();
            let mapper = |r: &u64, out: &mut Emitter<u64, u64>| out.emit(r % 10, *r);
            let reducer = |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| {
                out.push((*k, vs.into_iter().sum()));
            };
            let mut o = engine.run("det", &input, &mapper, &reducer).unwrap().output;
            o.sort();
            o
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn metrics_ledger_accumulates() {
        let engine = Engine::with_defaults();
        let input: Vec<u64> = (0..10).collect();
        let mapper = |r: &u64, out: &mut Emitter<(), u64>| out.emit((), *r);
        engine.run_map_only("j1", &input, &mapper).unwrap();
        engine.run_map_only("j2", &input, &mapper).unwrap();
        let ledger = engine.cluster_metrics();
        assert_eq!(ledger.num_jobs(), 2);
        assert_eq!(ledger.total_map_input_records(), 20);
        engine.reset_metrics();
        assert_eq!(engine.cluster_metrics().num_jobs(), 0);
    }

    #[test]
    fn cache_bytes_charged_per_map_task() {
        let engine = Engine::new(MrConfig {
            split_size: 5,
            ..MrConfig::default()
        });
        let input: Vec<u64> = (0..20).collect(); // 4 splits
        let mapper = |r: &u64, out: &mut Emitter<u64, u64>| out.emit(*r, 1);
        let reducer = |k: &u64, _v: Vec<u64>, out: &mut Vec<u64>| out.push(*k);
        let res = engine
            .run_with_cache("cached", &input, 1000, &mapper, &reducer)
            .unwrap();
        assert_eq!(res.metrics.broadcast_bytes, 4000);
    }

    #[test]
    fn user_counters_survive_to_metrics() {
        let engine = Engine::new(MrConfig {
            split_size: 4,
            ..MrConfig::default()
        });
        let input: Vec<u64> = (0..16).collect();
        let mapper = |r: &u64, out: &mut Emitter<(), u64>| {
            if r.is_multiple_of(2) {
                out.inc_counter("evens", 1);
            }
            out.emit((), *r);
        };
        let res = engine.run_map_only("ctr", &input, &mapper).unwrap();
        assert_eq!(res.metrics.counters["evens"], 8);
    }

    #[test]
    fn speculation_rescues_stragglers() {
        use crate::fault::StragglerPlan;
        let input: Vec<u64> = (0..24).collect();
        let mapper = |r: &u64, out: &mut Emitter<u64, u64>| out.emit(r % 3, *r);
        let reducer = |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| {
            out.push((*k, vs.into_iter().sum()));
        };
        let run = |speculative: bool| {
            let cfg = MrConfig {
                split_size: 2, // 12 tasks
                threads: 6,
                straggler: Some(StragglerPlan::new(0.3, 1_500, 9)),
                speculative,
                ..MrConfig::default()
            };
            let engine = Engine::new(cfg);
            let start = Instant::now();
            let res = engine.run("straggle", &input, &mapper, &reducer).unwrap();
            (res, start.elapsed())
        };
        let (slow_res, slow_wall) = run(false);
        let (fast_res, fast_wall) = run(true);
        // Identical results, committed exactly once per task.
        let sorted = |mut v: Vec<(u64, u64)>| {
            v.sort();
            v
        };
        assert_eq!(sorted(slow_res.output), sorted(fast_res.output));
        // Backups actually ran and won.
        assert!(fast_res.metrics.speculative_attempts > 0);
        assert!(
            fast_res.metrics.speculative_wins > 0,
            "{:?}",
            fast_res.metrics
        );
        // And the tail latency collapsed: without speculation the job
        // waits out the full 1.5s straggler delay; with it, the backups
        // commit in milliseconds and the cancellable sleep exits early.
        assert!(
            slow_wall.as_millis() >= 1_400,
            "slow run took {slow_wall:?}"
        );
        assert!(
            fast_wall < slow_wall / 2,
            "speculation did not help: {fast_wall:?} vs {slow_wall:?}"
        );
    }

    #[test]
    fn speculation_without_stragglers_is_harmless() {
        let input: Vec<u64> = (0..100).collect();
        let mapper = |r: &u64, out: &mut Emitter<u64, u64>| out.emit(r % 5, *r);
        let reducer = |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| {
            out.push((*k, vs.into_iter().sum()));
        };
        let engine = Engine::new(MrConfig {
            split_size: 10,
            speculative: true,
            ..MrConfig::default()
        });
        let res = engine
            .run("no-straggle", &input, &mapper, &reducer)
            .unwrap();
        let total: u64 = res.output.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, (0..100).sum::<u64>());
        assert_eq!(res.metrics.speculative_wins, 0);
    }

    #[test]
    fn straggler_injection_without_speculation_still_correct() {
        use crate::fault::StragglerPlan;
        let input: Vec<u64> = (0..20).collect();
        let mapper = |r: &u64, out: &mut Emitter<(), u64>| out.emit((), *r);
        let engine = Engine::new(MrConfig {
            split_size: 5,
            straggler: Some(StragglerPlan::new(1.0, 30, 2)),
            ..MrConfig::default()
        });
        let res = engine
            .run_map_only("all-straggle", &input, &mapper)
            .unwrap();
        assert_eq!(res.output, input);
    }

    #[test]
    fn partitioning_is_stable_across_runs() {
        // Two independent hash passes over the same keys must agree —
        // run-to-run metric reproducibility and the order-determinism
        // guarantee both assume a fixed key → partition layout.
        let keys: Vec<String> = (0..64).map(|i| format!("key-{i}")).collect();
        let first: Vec<usize> = keys.iter().map(|k| stable_partition(k, 4)).collect();
        let second: Vec<usize> = keys.iter().map(|k| stable_partition(k, 4)).collect();
        assert_eq!(first, second);
        assert!(first.iter().all(|&p| p < 4));
        // All four partitions get work from 64 distinct keys.
        for p in 0..4 {
            assert!(first.contains(&p), "partition {p} never hit");
        }
        // Pinned snapshot: a hasher or seed change silently re-sharding
        // keys (invalidating archived per-partition metrics) fails here.
        let snapshot: Vec<usize> = (0..8usize).map(|i| stable_partition(&i, 4)).collect();
        assert_eq!(snapshot, vec![3, 2, 1, 0, 3, 2, 1, 0]);
    }

    #[test]
    fn single_reducer_configuration() {
        let engine = Engine::new(MrConfig {
            num_reducers: 1,
            ..MrConfig::default()
        });
        let input: Vec<u64> = (0..50).collect();
        let mapper = |r: &u64, out: &mut Emitter<u64, u64>| out.emit(r % 5, *r);
        let reducer = |k: &u64, vs: Vec<u64>, out: &mut Vec<(u64, usize)>| {
            out.push((*k, vs.len()));
        };
        let res = engine.run("one-red", &input, &mapper, &reducer).unwrap();
        assert_eq!(res.metrics.reduce_tasks, 1);
        assert_eq!(res.output.len(), 5);
        // Single reducer sees keys in sorted order.
        let keys: Vec<u64> = res.output.iter().map(|p| p.0).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn shuffle_service_backend_is_byte_identical_and_metered() {
        use crate::distrib::BackendChoice;
        let local = Engine::new(MrConfig {
            split_size: 1,
            ..MrConfig::default()
        });
        let shuffled = Engine::new(MrConfig {
            split_size: 1,
            backend: BackendChoice::LocalShuffle,
            ..MrConfig::default()
        });
        let a = local
            .run("wc", &lines(), &TokenMapper, &SumReducer)
            .unwrap();
        let b = shuffled
            .run("wc", &lines(), &TokenMapper, &SumReducer)
            .unwrap();
        // Not just the same multiset: the exact same output order.
        assert_eq!(a.output, b.output);
        // The distributed plane was used and metered; the passthrough
        // path records no fetches.
        assert_eq!(a.metrics.shuffle_fetches, 0);
        assert!(b.metrics.shuffle_fetches > 0);
        assert!(b.metrics.shuffle_bytes_moved > 0);
    }

    #[test]
    fn lost_map_outputs_are_reexecuted_transparently() {
        use crate::distrib::LocalBackend;
        use crate::fault::FaultPlan;
        let baseline = Engine::new(MrConfig {
            split_size: 1,
            ..MrConfig::default()
        })
        .run("wc", &lines(), &TokenMapper, &SumReducer)
        .unwrap();
        // Probability 1 ⇒ every map output is dropped at store time;
        // every first fetch reports it lost and the engine re-executes
        // the map task through `restore_map`.
        let lossy = Engine::with_backend(
            MrConfig {
                split_size: 1,
                ..MrConfig::default()
            },
            Arc::new(LocalBackend::shuffle_service_with_loss(FaultPlan::new(
                1.0, 9,
            ))),
        );
        let res = lossy
            .run("wc", &lines(), &TokenMapper, &SumReducer)
            .unwrap();
        assert_eq!(res.output, baseline.output, "loss recovery changed output");
        assert!(
            res.metrics.fetch_retries >= 3,
            "all three map outputs were lost once: {}",
            res.metrics.fetch_retries
        );
    }
}
