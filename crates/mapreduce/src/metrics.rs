//! Per-job and per-pipeline execution metrics.
//!
//! The evaluation figures of the paper (runtime and I/O, Figure 7) depend
//! on *how much work and data movement* each algorithm causes: number of
//! MR jobs, records mapped, bytes shuffled, bytes broadcast through the
//! distributed cache. The engine meters all of these.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Counters for a single MapReduce job.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Job name as submitted.
    pub job_name: String,
    /// Number of map tasks (input splits).
    pub map_tasks: u64,
    /// Number of reduce tasks that received data.
    pub reduce_tasks: u64,
    /// Records read by all map tasks.
    pub map_input_records: u64,
    /// Records emitted by all map tasks (pre-combiner).
    pub map_output_records: u64,
    /// Bytes emitted by all map tasks (pre-combiner).
    pub map_output_bytes: u64,
    /// Records fed into map-side combiners (0 for combinerless jobs).
    pub combine_input_records: u64,
    /// Records left after map-side combining (0 for combinerless jobs).
    pub combine_output_records: u64,
    /// Records actually shuffled to reducers (post-combiner).
    pub shuffle_records: u64,
    /// Bytes actually shuffled to reducers (post-combiner).
    pub shuffle_bytes: u64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: u64,
    /// Records produced by reducers (or by map-only output).
    pub output_records: u64,
    /// Bytes broadcast to every map task via the distributed cache.
    pub broadcast_bytes: u64,
    /// Map attempts that were failed and retried by fault injection.
    pub failed_attempts: u64,
    /// Speculative backup attempts launched.
    pub speculative_attempts: u64,
    /// Tasks whose committing attempt was a speculative backup.
    pub speculative_wins: u64,
    /// Wall-clock time of the map phase.
    pub map_wall: Duration,
    /// Wall-clock time of the shuffle+reduce phase.
    pub reduce_wall: Duration,
    /// Partition fetches reducers issued against the shuffle backend
    /// (0 on the passthrough in-memory path).
    #[serde(default)]
    pub shuffle_fetches: u64,
    /// Fetch attempts retried after timeouts, dead workers, or
    /// checksum failures.
    #[serde(default)]
    pub fetch_retries: u64,
    /// Worker processes (re)started while this job ran.
    #[serde(default)]
    pub worker_restarts: u64,
    /// Bytes that physically moved through the shuffle backend
    /// (stored by maps + fetched by reducers).
    #[serde(default)]
    pub shuffle_bytes_moved: u64,
    /// User counters accumulated across all tasks.
    pub counters: BTreeMap<String, u64>,
}

impl JobMetrics {
    /// Zeroed counters for a job of the given name.
    pub fn new(name: &str) -> Self {
        Self {
            job_name: name.to_string(),
            ..Self::default()
        }
    }

    /// Total wall-clock of the job.
    pub fn total_wall(&self) -> Duration {
        self.map_wall + self.reduce_wall
    }
}

/// Per-node execution counters of one DAG run (see [`crate::dag`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DagNodeMetrics {
    /// Node name as declared in the [`crate::dag::JobGraph`].
    pub node: String,
    /// The node's job kind ("map-only", "map-reduce", "map-combine-reduce").
    pub kind: String,
    /// Scheduled attempts (primary executions, incl. retried failures).
    pub attempts: u64,
    /// Total executions, including lineage-recovery re-runs.
    pub executions: u64,
    /// Executions triggered by lineage recovery of a lost output.
    pub recoveries: u64,
    /// Wall-clock spent executing this node (all attempts).
    pub wall: Duration,
}

/// Metrics of one [`crate::dag::DagScheduler`] run, recorded into the
/// engine ledger next to the per-job [`JobMetrics`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DagMetrics {
    /// The graph's name.
    pub dag_name: String,
    /// Per-node counters, in graph declaration order.
    pub nodes: Vec<DagNodeMetrics>,
    /// Maximum number of nodes observed executing at the same time.
    pub concurrency_high_water: u64,
    /// Node executions of any kind (scheduled attempts + recoveries).
    pub total_executions: u64,
    /// Executions that were lineage-recovery re-runs.
    pub recovered_executions: u64,
    /// Node attempts that failed (injected faults or job errors).
    pub failed_node_attempts: u64,
    /// Dataset-store reads served from memory during this run.
    pub cache_hits: u64,
    /// Dataset-store reads that missed memory during this run.
    pub cache_misses: u64,
    /// Datasets spilled to the block store during this run.
    pub spills: u64,
    /// Encoded bytes written by those spills.
    pub spill_bytes: u64,
    /// In-memory bytes of the datasets spilled during this run; with
    /// [`DagMetrics::spill_bytes`] this gives the run's aggregate spill
    /// compression ratio.
    #[serde(default)]
    pub spill_raw_bytes: u64,
    /// Spilled datasets loaded back into memory during this run.
    pub spill_loads: u64,
    /// Column segments read from the block store during this run
    /// (projected reads and segmented full reloads).
    #[serde(default)]
    pub segment_reads: u64,
    /// Encoded bytes of those segment reads.
    #[serde(default)]
    pub segment_bytes_read: u64,
    /// Encoded bytes that projected reads did not have to fetch during
    /// this run — what column-projection pushdown saved.
    #[serde(default)]
    pub bytes_saved_by_projection: u64,
    /// Datasets evicted from memory (spilled or dropped) during this run.
    pub evictions: u64,
    /// Shuffle-backend partition fetches across the run's jobs.
    #[serde(default)]
    pub shuffle_fetches: u64,
    /// Shuffle-backend fetch retries across the run's jobs.
    #[serde(default)]
    pub fetch_retries: u64,
    /// Worker processes (re)started across the run's jobs.
    #[serde(default)]
    pub worker_restarts: u64,
    /// Bytes that physically moved through the shuffle backend across
    /// the run's jobs.
    #[serde(default)]
    pub shuffle_bytes_moved: u64,
    /// Wall-clock of the whole DAG run.
    pub wall: Duration,
}

impl DagMetrics {
    /// Looks up one node's counters by name.
    pub fn node(&self, name: &str) -> Option<&DagNodeMetrics> {
        self.nodes.iter().find(|n| n.node == name)
    }
}

/// Accumulated metrics of every job an [`crate::Engine`] has executed —
/// the paper's "number of MapReduce jobs needed for clustering
/// determination" is `jobs().len()` on this ledger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterMetrics {
    jobs: Vec<JobMetrics>,
    #[serde(default)]
    dag_runs: Vec<DagMetrics>,
}

impl ClusterMetrics {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&mut self, job: JobMetrics) {
        self.jobs.push(job);
    }

    pub(crate) fn record_dag(&mut self, dag: DagMetrics) {
        self.dag_runs.push(dag);
    }

    /// All executed jobs, in submission order.
    pub fn jobs(&self) -> &[JobMetrics] {
        &self.jobs
    }

    /// All recorded DAG runs, in submission order.
    pub fn dag_runs(&self) -> &[DagMetrics] {
        &self.dag_runs
    }

    /// Number of executed jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Total records read by map phases across all jobs.
    pub fn total_map_input_records(&self) -> u64 {
        self.jobs.iter().map(|j| j.map_input_records).sum()
    }

    /// Total bytes shuffled across all jobs.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffle_bytes).sum()
    }

    /// Total bytes broadcast through the distributed cache.
    pub fn total_broadcast_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.broadcast_bytes).sum()
    }

    /// Total wall-clock across all jobs.
    pub fn total_wall(&self) -> Duration {
        self.jobs.iter().map(|j| j.total_wall()).sum()
    }

    /// Clears the ledger (e.g. between benchmark repetitions).
    pub fn reset(&mut self) {
        self.jobs.clear();
        self.dag_runs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_jobs() {
        let mut c = ClusterMetrics::new();
        assert_eq!(c.num_jobs(), 0);
        let mut j1 = JobMetrics::new("a");
        j1.map_input_records = 10;
        j1.shuffle_bytes = 100;
        let mut j2 = JobMetrics::new("b");
        j2.map_input_records = 5;
        j2.shuffle_bytes = 7;
        j2.broadcast_bytes = 50;
        c.record(j1);
        c.record(j2);
        assert_eq!(c.num_jobs(), 2);
        assert_eq!(c.total_map_input_records(), 15);
        assert_eq!(c.total_shuffle_bytes(), 107);
        assert_eq!(c.total_broadcast_bytes(), 50);
        assert_eq!(c.jobs()[0].job_name, "a");
    }

    #[test]
    fn total_wall_sums_phases() {
        let mut j = JobMetrics::new("t");
        j.map_wall = Duration::from_millis(30);
        j.reduce_wall = Duration::from_millis(12);
        assert_eq!(j.total_wall(), Duration::from_millis(42));
    }

    #[test]
    fn reset_clears() {
        let mut c = ClusterMetrics::new();
        c.record(JobMetrics::new("x"));
        c.record_dag(DagMetrics {
            dag_name: "d".into(),
            ..DagMetrics::default()
        });
        assert_eq!(c.dag_runs().len(), 1);
        c.reset();
        assert_eq!(c.num_jobs(), 0);
        assert!(c.dag_runs().is_empty());
    }

    #[test]
    fn dag_metrics_node_lookup_and_json() {
        let dag = DagMetrics {
            dag_name: "pipeline".into(),
            nodes: vec![DagNodeMetrics {
                node: "histogram".into(),
                kind: "map-reduce".into(),
                attempts: 1,
                executions: 1,
                recoveries: 0,
                wall: Duration::from_millis(5),
            }],
            concurrency_high_water: 2,
            cache_hits: 3,
            ..DagMetrics::default()
        };
        assert_eq!(dag.node("histogram").unwrap().attempts, 1);
        assert!(dag.node("missing").is_none());
        // The whole ledger (jobs + DAG runs) must round-trip as JSON for
        // the CLI's --metrics-json dump.
        let mut c = ClusterMetrics::new();
        c.record(JobMetrics::new("j"));
        c.record_dag(dag);
        let json = serde_json::to_string(&c).expect("serializes");
        match serde_json::from_str::<ClusterMetrics>(&json) {
            Ok(back) => {
                assert_eq!(back.num_jobs(), 1);
                assert_eq!(back.dag_runs().len(), 1);
                assert_eq!(back.dag_runs()[0].concurrency_high_water, 2);
            }
            // The offline serde_json stub serializes everything as "{}"
            // and refuses to deserialize; only a stub failure is
            // acceptable here — a real serde_json must round-trip.
            Err(e) => assert!(
                e.to_string().contains("offline stub"),
                "round-trip failed with a real serde_json: {e}"
            ),
        }
    }
}
