//! Exhaustive interleaving models for the engine's concurrency kernels.
//!
//! Compiled and run only under the model-checking configuration:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p p3c-mapreduce --test loom_models
//! ```
//!
//! In that configuration `p3c_mapreduce::kernel` swaps its primitives
//! for the `p3c-loom` shims, and each `model(..)` call below explores
//! *every* schedule of the closure's threads (sequentially consistent
//! interleavings; see the p3c-loom crate docs for scope). These are the
//! kernel properties the engine's determinism argument (DESIGN.md §5,
//! §10) rests on:
//!
//! * [`WorkQueue`] hands each ticket to exactly one claimant.
//! * [`CommitBoard`] commits each task exactly once even under racing
//!   speculative attempts.
//! * [`ShuffleBuckets`] drains in split order no matter which producer
//!   commits first — the order-determinism keystone.
//! * [`CounterLedger`] totals are exact under concurrent merges.
//! * [`BlockPartials`] + [`WorkQueue`] — the worker-pool kernel behind
//!   `parallel_for_blocks` (DESIGN.md §11) — merges per-block partials
//!   in block order regardless of which worker claims which block.
//! * [`MapOutputTracker`] — the distributed data plane's location
//!   registry (DESIGN.md §12) — stays consistent when re-registrations
//!   and lookups race worker deaths.
//! * [`Admission`] — the service's Mutex+Condvar job gate (DESIGN.md
//!   §14) — never over-admits under a budget, always admits an
//!   oversized job when idle, and its notify-on-release protocol never
//!   loses a wakeup.
#![cfg(loom)]

use p3c_loom::{model, thread};
use p3c_mapreduce::distrib::{BlockLocation, MapOutputTracker};
use p3c_mapreduce::kernel::{BlockPartials, CommitBoard, CounterLedger, ShuffleBuckets, WorkQueue};
use p3c_mapreduce::service::Admission;
use std::sync::Arc;

/// Two workers race to drain a three-item queue: across every schedule,
/// each index is claimed exactly once and nothing is claimed after the
/// queue reports empty.
#[test]
fn work_queue_claims_are_exactly_once() {
    let executions = model(|| {
        let queue = Arc::new(WorkQueue::new(3));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(idx) = queue.claim() {
                        mine.push(idx);
                    }
                    mine
                })
            })
            .collect();
        let mut all: Vec<usize> = workers.into_iter().flat_map(|w| w.join_unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "each ticket claimed exactly once");
        assert_eq!(queue.claim(), None, "drained queue stays drained");
    });
    assert!(executions > 1, "model explored more than one schedule");
}

/// A primary and a speculative backup race to commit the same task:
/// exactly one attempt wins in every schedule.
#[test]
fn commit_board_single_winner_per_task() {
    model(|| {
        let board = Arc::new(CommitBoard::new(1));
        let attempts: Vec<_> = (0..2)
            .map(|_| {
                let board = Arc::clone(&board);
                thread::spawn(move || board.try_commit(0))
            })
            .collect();
        let wins = attempts
            .into_iter()
            .map(|a| a.join_unwrap())
            .filter(|&won| won)
            .count();
        assert_eq!(wins, 1, "exactly one attempt commits");
        assert!(board.is_done(0));
        assert!(board.all_done());
    });
}

/// Two map tasks commit their shuffle output concurrently; whichever
/// finishes first, the drained sequence is always split order. This is
/// the invariant that makes reducer input — and therefore final output —
/// independent of scheduling.
#[test]
fn shuffle_buckets_drain_order_is_schedule_independent() {
    model(|| {
        let buckets = Arc::new(ShuffleBuckets::new(2));
        let producers: Vec<_> = [(0usize, vec![10, 11]), (1usize, vec![20])]
            .into_iter()
            .map(|(slot, items)| {
                let buckets = Arc::clone(&buckets);
                thread::spawn(move || buckets.commit(slot, items))
            })
            .collect();
        for p in producers {
            p.join_unwrap();
        }
        assert_eq!(
            buckets.take_ordered(),
            vec![10, 11, 20],
            "drain order is slot order in every schedule"
        );
    });
}

/// Two finishing tasks merge counter deltas concurrently: totals are
/// exact (no lost updates) in every schedule.
#[test]
fn counter_ledger_merges_are_exact() {
    model(|| {
        let ledger = Arc::new(CounterLedger::new());
        let tasks: Vec<_> = [
            vec![("records", 2u64), ("bytes", 16u64)],
            vec![("records", 3u64)],
        ]
        .into_iter()
        .map(|deltas| {
            let ledger = Arc::clone(&ledger);
            thread::spawn(move || {
                ledger.merge(deltas.iter().map(|&(name, delta)| (name, delta)));
            })
        })
        .collect();
        for t in tasks {
            t.join_unwrap();
        }
        let snapshot = ledger.snapshot();
        assert_eq!(snapshot["records"], 5);
        assert_eq!(snapshot["bytes"], 16);
    });
}

/// The worker-pool block kernel in miniature — the claim/commit/merge
/// discipline of `parallel_for_blocks` (DESIGN.md §11): two workers
/// drain a three-block queue, each committing a per-block partial
/// (here `block * 10`, standing in for a per-block f64 reduction). In
/// every schedule each block is claimed and committed exactly once,
/// and the merged sequence comes back in block-index order — so the
/// caller's fold over the partials cannot depend on scheduling.
#[test]
fn block_partials_merge_order_is_schedule_independent() {
    let executions = model(|| {
        let queue = Arc::new(WorkQueue::new(3));
        let partials = Arc::new(BlockPartials::new(3));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let partials = Arc::clone(&partials);
                thread::spawn(move || {
                    while let Some(block) = queue.claim() {
                        partials.commit(block, block * 10);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join_unwrap();
        }
        let partials = Arc::into_inner(partials).expect("all workers joined");
        assert_eq!(
            partials.into_ordered(),
            vec![0, 10, 20],
            "partials merge in block order in every schedule"
        );
    });
    assert!(executions > 1, "model explored more than one schedule");
}

/// The full map-commit protocol in miniature: workers claim splits from
/// the queue, race a speculative duplicate on split 0, and only commit
/// winners write shuffle output. Output must equal the serial result in
/// every schedule.
#[test]
fn claim_commit_shuffle_composition_is_deterministic() {
    model(|| {
        let queue = Arc::new(WorkQueue::new(2));
        let board = Arc::new(CommitBoard::new(2));
        let buckets = Arc::new(ShuffleBuckets::new(2));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let board = Arc::clone(&board);
                let buckets = Arc::clone(&buckets);
                thread::spawn(move || {
                    while let Some(split) = queue.claim() {
                        if board.try_commit(split) {
                            buckets.commit(split, vec![split * 10, split * 10 + 1]);
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join_unwrap();
        }
        assert!(board.all_done());
        assert_eq!(buckets.take_ordered(), vec![0, 1, 10, 11]);
    });
}

/// The distributed data plane's location registry (DESIGN.md §12): a
/// re-executed map registering its fresh copy on worker 1 races the
/// death of worker 0 that held the stale copy. In both orders the entry
/// must end up pointing at worker 1 — register-then-invalidate removes
/// nothing (the entry already moved off worker 0), invalidate-then-
/// register re-adds it — and the invalidation epoch advances exactly
/// once.
#[test]
fn tracker_reregistration_races_worker_death_consistently() {
    let executions = model(|| {
        let tracker = Arc::new(MapOutputTracker::new());
        let stale = BlockLocation {
            worker: 0,
            len: 4,
            checksum: 0xaa,
        };
        let fresh = BlockLocation {
            worker: 1,
            len: 4,
            checksum: 0xbb,
        };
        tracker.register(1, 0, 0, stale);
        let rereg = {
            let tracker = Arc::clone(&tracker);
            thread::spawn(move || tracker.register(1, 0, 0, fresh))
        };
        let death = {
            let tracker = Arc::clone(&tracker);
            thread::spawn(move || tracker.invalidate_worker(0))
        };
        rereg.join_unwrap();
        death.join_unwrap();
        assert_eq!(
            tracker.lookup(1, 0, 0),
            Some(fresh),
            "entry points at the re-registered copy in every schedule"
        );
        assert_eq!(tracker.epoch(), 1, "one death, one epoch bump");
    });
    assert!(executions > 1, "model explored more than one schedule");
}

/// The service admission gate under contention (DESIGN.md §14): two
/// 80-byte re-cluster jobs compete for a 100-byte budget. In every
/// schedule at most one is in flight at a time, both eventually
/// complete (the release's `notify_all` cannot be lost — `wait`
/// releases the state lock and parks atomically), and the gate is idle
/// again after both release.
#[test]
fn admission_budget_gates_concurrent_jobs() {
    use p3c_loom::sync::atomic::{AtomicUsize, Ordering};
    let executions = model(|| {
        let adm = Arc::new(Admission::new(Some(100)));
        let running = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..2)
            .map(|_| {
                let adm = Arc::clone(&adm);
                let running = Arc::clone(&running);
                thread::spawn(move || {
                    adm.admit(80);
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(
                        now <= 1,
                        "two 80-byte jobs in flight under a 100-byte budget"
                    );
                    running.fetch_sub(1, Ordering::SeqCst);
                    adm.release(80);
                })
            })
            .collect();
        for j in jobs {
            j.join_unwrap();
        }
        assert!(!adm.would_wait(80), "gate is idle after both releases");
    });
    assert!(executions > 1, "model explored more than one schedule");
}

/// The oversized-job protocol: an idle service admits a job bigger than
/// the whole budget without waiting (degrade, don't deadlock), a second
/// oversized job parks until the first's release, and the
/// drop-the-guard-then-notify release ordering wakes it in every
/// schedule.
#[test]
fn oversized_admission_waits_for_idle_and_wakes_on_release() {
    use p3c_loom::sync::atomic::{AtomicBool, Ordering};
    model(|| {
        let adm = Arc::new(Admission::new(Some(100)));
        let first_released = Arc::new(AtomicBool::new(false));
        assert!(
            !adm.admit(250),
            "idle service admits an oversized job without waiting"
        );
        let second = {
            let adm = Arc::clone(&adm);
            let flag = Arc::clone(&first_released);
            thread::spawn(move || {
                adm.admit(250);
                assert!(
                    flag.load(Ordering::SeqCst),
                    "second oversized job admitted before the first released"
                );
                adm.release(250);
            })
        };
        first_released.store(true, Ordering::SeqCst);
        adm.release(250);
        second.join_unwrap();
    });
}

/// A reducer's lookup racing a worker death never observes torn state:
/// it sees the intact pre-death location or `None`, nothing else — and
/// after the death the entry is gone for every later reader.
#[test]
fn tracker_lookup_during_worker_death_sees_all_or_nothing() {
    model(|| {
        let tracker = Arc::new(MapOutputTracker::new());
        let loc = BlockLocation {
            worker: 0,
            len: 8,
            checksum: 0xcc,
        };
        tracker.register(1, 0, 0, loc);
        let reader = {
            let tracker = Arc::clone(&tracker);
            thread::spawn(move || tracker.lookup(1, 0, 0))
        };
        let death = {
            let tracker = Arc::clone(&tracker);
            thread::spawn(move || tracker.invalidate_worker(0))
        };
        let seen = reader.join_unwrap();
        let lost = death.join_unwrap();
        assert!(
            seen == Some(loc) || seen.is_none(),
            "lookup saw a torn location: {seen:?}"
        );
        assert_eq!(lost, 1, "the death dropped exactly the one entry");
        assert_eq!(tracker.lookup(1, 0, 0), None);
        assert_eq!(tracker.epoch(), 1);
    });
}
