//! Property tests for the length-prefixed frame parser: whatever bytes
//! arrive on the wire, [`read_frame`] must return an error or a frame —
//! never panic, never hang, and never allocate on the say-so of an
//! oversized length prefix.
//!
//! The offline `proptest` stub compiles but never executes property
//! bodies, so these properties drive their own cases from a seeded
//! splitmix64 generator: a few hundred deterministic, shrink-free
//! cases that actually run in every CI tier.

use p3c_mapreduce::distrib::wire::{fnv1a64, read_frame, write_frame, MAX_FRAME_LEN};
use std::io::Cursor;

/// Deterministic case generator (splitmix64): reproducible across runs
/// and platforms, which the workspace's rng audit rule also insists on.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn frame_bytes(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, opcode, payload).unwrap();
    buf
}

#[test]
fn oversized_length_is_rejected_before_allocating() {
    // A 5-byte header claiming a payload one past the cap: the parser
    // must refuse without trying to read (or reserve) the body.
    let mut head = ((MAX_FRAME_LEN as u32) + 1).to_le_bytes().to_vec();
    head.push(7);
    let err = read_frame(&mut Cursor::new(head)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // u32::MAX likewise (the historical 1 GiB cap would have let a
    // four-byte header demand a gigabyte).
    let mut head = u32::MAX.to_le_bytes().to_vec();
    head.push(7);
    let err = read_frame(&mut Cursor::new(head)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn roundtrip() {
    let mut g = Gen(0xfeed_0001);
    for _ in 0..300 {
        let opcode = g.next() as u8;
        let len = g.below(2048);
        let payload = g.bytes(len);
        let buf = frame_bytes(opcode, &payload);
        let (op, body) = read_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(op, opcode);
        assert_eq!(body, payload);
    }
}

#[test]
fn truncation_is_a_clean_error() {
    let mut g = Gen(0xfeed_0002);
    for _ in 0..300 {
        let opcode = g.next() as u8;
        let len = g.below(512);
        let payload = g.bytes(len);
        let buf = frame_bytes(opcode, &payload);
        let cut = g.below(buf.len()); // 0 <= cut < len: always short
        let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}

#[test]
fn arbitrary_corruption_never_panics() {
    let mut g = Gen(0xfeed_0003);
    for _ in 0..500 {
        let opcode = g.next() as u8;
        let len = g.below(512);
        let payload = g.bytes(len);
        let mut buf = frame_bytes(opcode, &payload);
        let at = g.below(buf.len());
        let flip = (g.next() as u8) | 1; // never zero: always a change
        buf[at] ^= flip;
        // A flipped byte may grow the declared length (short read), blow
        // the cap (rejected), shrink it (parses, trailing bytes ignored),
        // or touch the body (parses with different content). All are
        // acceptable; a panic or unbounded allocation is not.
        match read_frame(&mut Cursor::new(&buf)) {
            Ok((op, body)) => {
                let intact = op == opcode && body == payload;
                assert!(!intact, "flipping a byte cannot leave the frame identical");
            }
            Err(e) => {
                let kind = e.kind();
                assert!(
                    kind == std::io::ErrorKind::UnexpectedEof
                        || kind == std::io::ErrorKind::InvalidData,
                    "unexpected error kind {kind:?}"
                );
            }
        }
    }
}

#[test]
fn payload_corruption_is_caught_by_the_checksum() {
    // The transfer protocol pairs every partition with its FNV-1a
    // checksum (tracker entry + STORE/FETCH_OK frames); this is the
    // end-to-end property the fetch path relies on to turn silent
    // corruption into a retry.
    let mut g = Gen(0xfeed_0004);
    for _ in 0..300 {
        let len = 1 + g.below(512);
        let payload = g.bytes(len);
        let checksum = fnv1a64(&payload);
        let mut corrupted = payload.clone();
        let at = g.below(corrupted.len());
        corrupted[at] ^= (g.next() as u8) | 1;
        assert_ne!(checksum, fnv1a64(&corrupted));
    }
}

#[test]
fn back_to_back_frames_parse_in_order() {
    let mut g = Gen(0xfeed_0005);
    for _ in 0..100 {
        let frames: Vec<(u8, Vec<u8>)> = (0..1 + g.below(7))
            .map(|_| {
                let op = g.next() as u8;
                let len = g.below(128);
                (op, g.bytes(len))
            })
            .collect();
        let mut buf = Vec::new();
        for (op, payload) in &frames {
            write_frame(&mut buf, *op, payload).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for (op, payload) in &frames {
            let (got_op, got_body) = read_frame(&mut cursor).unwrap();
            assert_eq!(got_op, *op);
            assert_eq!(&got_body, payload);
        }
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
