//! Property tests: the engine's shuffle must agree with a reference
//! in-memory grouping, regardless of split size, thread count, reducer
//! count, and fault injection.

use p3c_mapreduce::{Emitter, Engine, FaultPlan, MrConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn reference_group(items: &[(u32, u32)]) -> BTreeMap<u32, u64> {
    let mut m = BTreeMap::new();
    for &(k, v) in items {
        *m.entry(k).or_insert(0u64) += v as u64;
    }
    m
}

fn run_engine(items: &[(u32, u32)], cfg: MrConfig) -> BTreeMap<u32, u64> {
    let engine = Engine::new(cfg);
    let mapper = |r: &(u32, u32), out: &mut Emitter<u32, u64>| out.emit(r.0, r.1 as u64);
    let reducer = |k: &u32, vs: Vec<u64>, out: &mut Vec<(u32, u64)>| {
        out.push((*k, vs.into_iter().sum()));
    };
    engine
        .run("prop", items, &mapper, &reducer)
        .unwrap()
        .output
        .into_iter()
        .collect()
}

proptest! {
    #[test]
    fn shuffle_agrees_with_reference(
        items in prop::collection::vec((0u32..50, 0u32..100), 0..300),
        split_size in 1usize..64,
        reducers in 1usize..9,
        threads in 1usize..8,
    ) {
        let cfg = MrConfig { num_reducers: reducers, split_size, threads, ..MrConfig::default() };
        prop_assert_eq!(run_engine(&items, cfg), reference_group(&items));
    }

    #[test]
    fn fault_injection_does_not_change_results(
        items in prop::collection::vec((0u32..20, 0u32..100), 1..200),
        seed in 0u64..1000,
    ) {
        let clean = run_engine(&items, MrConfig { split_size: 7, ..MrConfig::default() });
        let faulty_cfg = MrConfig {
            split_size: 7,
            fault: Some(FaultPlan::new(0.3, seed)),
            max_attempts: 50,
            ..MrConfig::default()
        };
        let faulty = run_engine(&items, faulty_cfg);
        prop_assert_eq!(clean, faulty);
    }

    #[test]
    fn map_only_output_is_identity_ordered(
        items in prop::collection::vec(0u64..10_000, 0..500),
        split_size in 1usize..64,
    ) {
        let engine = Engine::new(MrConfig { split_size, ..MrConfig::default() });
        let mapper = |r: &u64, out: &mut Emitter<(), u64>| out.emit((), *r);
        let out = engine.run_map_only("id", &items, &mapper).unwrap().output;
        prop_assert_eq!(out, items);
    }

    #[test]
    fn metrics_conserve_records(
        items in prop::collection::vec((0u32..10, 0u32..10), 0..200),
        split_size in 1usize..32,
    ) {
        let engine = Engine::new(MrConfig { split_size, ..MrConfig::default() });
        let mapper = |r: &(u32, u32), out: &mut Emitter<u32, u64>| out.emit(r.0, r.1 as u64);
        let reducer = |k: &u32, vs: Vec<u64>, out: &mut Vec<(u32, u64)>| {
            out.push((*k, vs.into_iter().sum()));
        };
        let res = engine.run("conserve", &items, &mapper, &reducer).unwrap();
        prop_assert_eq!(res.metrics.map_input_records, items.len() as u64);
        prop_assert_eq!(res.metrics.map_output_records, items.len() as u64);
        // Without combiner, shuffle records == map output records.
        prop_assert_eq!(res.metrics.shuffle_records, items.len() as u64);
        let distinct = reference_group(&items).len() as u64;
        prop_assert_eq!(res.metrics.reduce_input_groups, distinct);
        prop_assert_eq!(res.metrics.output_records, distinct);
    }
}
