//! Quickstart: generate a small projected-cluster dataset, run P3C+, and
//! inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use p3c_core::config::P3cParams;
use p3c_core::p3cplus::P3cPlus;
use p3c_datagen::{generate, SyntheticSpec};
use p3c_eval::e4sc;

fn main() {
    // 5,000 points in 20 dimensions, three hidden projected clusters,
    // 10% uniform noise. Everything is seeded — rerunning reproduces
    // the same data and the same clustering.
    let spec = SyntheticSpec {
        n: 5_000,
        d: 20,
        num_clusters: 3,
        noise_fraction: 0.10,
        max_cluster_dims: 6,
        seed: 2,
        ..SyntheticSpec::default()
    };
    let data = generate(&spec);
    println!(
        "generated {} points × {} dims, {} hidden clusters, {} noise points",
        data.dataset.len(),
        data.dataset.dim(),
        data.ground_truth.num_clusters(),
        data.ground_truth.outliers.len()
    );

    // P3C+ with the paper's improved model: Freedman–Diaconis bins,
    // Poisson + effect-size support test, redundancy filter, MVB outlier
    // detection, AI proving.
    let result = P3cPlus::new(P3cParams::default()).cluster(&data.dataset);

    println!(
        "\nfound {} projected clusters:",
        result.clustering.num_clusters()
    );
    for (i, cluster) in result.clustering.clusters.iter().enumerate() {
        let attrs: Vec<String> = cluster.attributes.iter().map(|a| format!("a{a}")).collect();
        println!(
            "  cluster {i}: {} points, subspace {{{}}}",
            cluster.size(),
            attrs.join(", ")
        );
        for iv in &cluster.intervals {
            println!("    a{} ∈ [{:.3}, {:.3}]", iv.attr, iv.lo, iv.hi);
        }
    }
    println!("outliers: {}", result.clustering.outliers.len());

    let quality = e4sc(&result.clustering, &data.ground_truth);
    println!("\nE4SC against ground truth: {quality:.3}");
    println!(
        "pipeline stats: {} bins, {} relevant intervals, {} cores \
         ({} removed as redundant), {} EM iterations",
        result.stats.bins,
        result.stats.relevant_intervals,
        result.stats.cores,
        result.stats.redundancy_removed,
        result.stats.em_iterations
    );
}
