//! High-dimensional, tiny-sample clustering: the paper's real-world
//! scenario (Section 7.6). A 62×2000 gene-expression-like matrix is
//! clustered by the original P3C and by P3C+, and both are scored against
//! the tumor/normal labels.
//!
//! ```text
//! cargo run --release --example gene_expression
//! ```

use p3c_core::config::P3cParams;
use p3c_core::p3c::P3c;
use p3c_core::p3cplus::P3cPlus;
use p3c_datagen::{colon_like, ColonSpec};
use p3c_eval::label_accuracy;

fn main() {
    // 62 samples × 2000 genes, two classes (40 "tumor" / 22 "normal"),
    // 40 genuinely discriminative genes — the synthetic stand-in for the
    // UCI colon-cancer microarray set (DESIGN.md §1).
    let data = colon_like(&ColonSpec::default());
    println!(
        "dataset: {} samples × {} genes, {} discriminative genes",
        data.dataset.len(),
        data.dataset.dim(),
        data.discriminative_genes.len()
    );

    // With n = 62 the histograms are coarse (Sturges: 7 bins; FD: 4), and
    // supports are tiny — loosen the Poisson level accordingly, exactly
    // the regime in which the original P3C paper evaluated microarrays.
    let p3c = P3c::new(1e-4).cluster(&data.dataset);
    let acc_p3c = label_accuracy(&p3c.clustering, &data.labels);
    println!(
        "\noriginal P3C : {} clusters, accuracy {:.1}%",
        p3c.clustering.num_clusters(),
        acc_p3c * 100.0
    );

    let p3cplus = P3cPlus::new(P3cParams {
        alpha_poisson: 1e-4,
        ..P3cParams::default()
    })
    .cluster(&data.dataset);
    let acc_plus = label_accuracy(&p3cplus.clustering, &data.labels);
    println!(
        "P3C+         : {} clusters, accuracy {:.1}%",
        p3cplus.clustering.num_clusters(),
        acc_plus * 100.0
    );

    // Which genes did P3C+ consider relevant? Compare against the ground
    // truth markers.
    let truth: std::collections::BTreeSet<usize> =
        data.discriminative_genes.iter().copied().collect();
    let mut found: std::collections::BTreeSet<usize> = Default::default();
    for cluster in &p3cplus.clustering.clusters {
        found.extend(cluster.attributes.iter().copied());
    }
    let hits = found.intersection(&truth).count();
    println!(
        "\nP3C+ flagged {} genes as relevant; {} of them are true markers \
         (of {} planted)",
        found.len(),
        hits,
        truth.len()
    );
    println!("\npaper reference (real UCI data): P3C 67% vs P3C+ 71% accuracy");
}
