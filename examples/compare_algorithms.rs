//! Head-to-head comparison of all five large-scale competitors of the
//! paper's Figures 6–7 on one dataset: BoW (Light), BoW (MVB),
//! P3C+-MR-Light, P3C+-MR (MVB) and P3C+-MR (Naive). Prints quality
//! (E4SC, F1, RNIA, CE), runtime and MapReduce job counts.
//!
//! ```text
//! cargo run --release --example compare_algorithms [-- <points>]
//! ```

use p3c_bow::{Bow, BowConfig, BowVariant};
use p3c_core::config::{OutlierMethod, P3cParams};
use p3c_core::mr::{P3cPlusMr, P3cPlusMrLight};
use p3c_datagen::{generate, SyntheticSpec};
use p3c_dataset::Clustering;
use p3c_eval::{ce, e4sc, f1_object, rnia};
use p3c_mapreduce::{Engine, MrConfig};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let data = generate(&SyntheticSpec {
        n,
        d: 50,
        num_clusters: 5,
        noise_fraction: 0.10,
        max_cluster_dims: 10,
        seed: 3,
        ..SyntheticSpec::default()
    });
    println!(
        "dataset: {} points × {} dims, 5 hidden clusters, 10% noise\n",
        data.dataset.len(),
        data.dataset.dim()
    );
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>9} {:>6} {:>9}",
        "algorithm", "E4SC", "F1", "RNIA", "CE", "runtime_s", "jobs", "clusters"
    );

    let run = |name: &str, f: &dyn Fn(&Engine) -> Clustering| {
        let engine = Engine::new(MrConfig {
            num_reducers: 8,
            split_size: 8_192,
            ..MrConfig::default()
        });
        let start = Instant::now();
        let clustering = f(&engine);
        let elapsed = start.elapsed();
        println!(
            "{:<12} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>9.2} {:>6} {:>9}",
            name,
            e4sc(&clustering, &data.ground_truth),
            f1_object(&clustering, &data.ground_truth),
            rnia(&clustering, &data.ground_truth),
            ce(&clustering, &data.ground_truth),
            elapsed.as_secs_f64(),
            engine.cluster_metrics().num_jobs(),
            clustering.num_clusters(),
        );
    };

    let params = P3cParams {
        em_max_iters: 5,
        ..P3cParams::default()
    };
    let sample = (n / 10).max(1_000);

    run("BoW (Light)", &|eng| {
        let config = BowConfig {
            num_partitions: 8,
            sample_size: sample,
            variant: BowVariant::Light,
            params: params.clone(),
            ..BowConfig::default()
        };
        Bow::new(eng, config)
            .cluster(&data.dataset)
            .unwrap()
            .clustering
    });
    run("BoW (MVB)", &|eng| {
        let config = BowConfig {
            num_partitions: 8,
            sample_size: sample,
            variant: BowVariant::Mvb,
            params: params.clone(),
            ..BowConfig::default()
        };
        Bow::new(eng, config)
            .cluster(&data.dataset)
            .unwrap()
            .clustering
    });
    run("MR (Light)", &|eng| {
        P3cPlusMrLight::new(eng, params.clone())
            .cluster(&data.dataset)
            .unwrap()
            .clustering
    });
    run("MR (MVB)", &|eng| {
        P3cPlusMr::new(
            eng,
            P3cParams {
                outlier: OutlierMethod::Mvb,
                ..params.clone()
            },
        )
        .cluster(&data.dataset)
        .unwrap()
        .clustering
    });
    run("MR (Naive)", &|eng| {
        P3cPlusMr::new(
            eng,
            P3cParams {
                outlier: OutlierMethod::Naive,
                ..params.clone()
            },
        )
        .cluster(&data.dataset)
        .unwrap()
        .clustering
    });

    println!(
        "\nexpected shape (paper Fig. 6/7): Light variants lead on quality; \
         MR pipelines beat BoW on E4SC; BoW and MR-Light are the fastest."
    );
}
