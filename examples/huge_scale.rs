//! Large-scale clustering with the MapReduce pipelines: P3C+-MR-Light on
//! a (scaled-down stand-in for the paper's) huge dataset, with the
//! engine's job ledger printed at the end — jobs, shuffle bytes,
//! broadcast bytes, per-phase wall time.
//!
//! ```text
//! cargo run --release --example huge_scale [-- <points> [<dims>]]
//! ```

use p3c_core::config::P3cParams;
use p3c_core::mr::P3cPlusMrLight;
use p3c_datagen::{generate, SyntheticSpec};
use p3c_eval::e4sc;
use p3c_mapreduce::{Engine, MrConfig};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let d: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);

    println!("generating {n} points × {d} dims (5 clusters, 10% noise) …");
    let data = generate(&SyntheticSpec {
        n,
        d,
        num_clusters: 5,
        noise_fraction: 0.10,
        max_cluster_dims: 10.min(d),
        seed: 1,
        ..SyntheticSpec::default()
    });

    // A "cluster" with 8 reducers and 8k-record splits. The paper used
    // 112 reducers on Hadoop; the decomposition into jobs is identical.
    let engine = Engine::new(MrConfig {
        num_reducers: 8,
        split_size: 8_192,
        ..MrConfig::default()
    });

    let start = Instant::now();
    let result = P3cPlusMrLight::new(&engine, P3cParams::default())
        .cluster(&data.dataset)
        .expect("pipeline run");
    let elapsed = start.elapsed();

    println!(
        "\nP3C+-MR-Light: {} clusters in {:.2}s (E4SC {:.3})",
        result.clustering.num_clusters(),
        elapsed.as_secs_f64(),
        e4sc(&result.clustering, &data.ground_truth)
    );

    let metrics = engine.cluster_metrics();
    println!("\nMapReduce job ledger ({} jobs):", metrics.num_jobs());
    println!(
        "{:<34} {:>10} {:>12} {:>12} {:>9}",
        "job", "map recs", "shuffle B", "broadcast B", "wall ms"
    );
    for job in metrics.jobs() {
        println!(
            "{:<34} {:>10} {:>12} {:>12} {:>9}",
            job.job_name,
            job.map_input_records,
            job.shuffle_bytes,
            job.broadcast_bytes,
            job.total_wall().as_millis()
        );
    }
    println!(
        "\ntotals: {} map records, {} shuffle bytes, {} broadcast bytes, {:.2}s in jobs",
        metrics.total_map_input_records(),
        metrics.total_shuffle_bytes(),
        metrics.total_broadcast_bytes(),
        metrics.total_wall().as_secs_f64()
    );
}
