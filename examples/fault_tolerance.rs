//! The operational side of the reproduction: the same clustering pipeline
//! on a healthy cluster, a cluster with failing tasks, and a cluster with
//! stragglers rescued by speculative execution — identical results every
//! time, with the engine's retry/backup bookkeeping printed. The dataset
//! is staged through the HDFS-lite block store, as a real deployment
//! would.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use p3c_core::config::P3cParams;
use p3c_core::mr::P3cPlusMrLight;
use p3c_datagen::{generate, SyntheticSpec};
use p3c_dataset::persist;
use p3c_mapreduce::fault::StragglerPlan;
use p3c_mapreduce::{BlockStore, Engine, FaultPlan, MrConfig};
use std::time::Instant;

fn main() {
    // Stage the dataset as replicated blocks, read it back — the I/O
    // path every job of the paper's pipeline starts from.
    let data = generate(&SyntheticSpec {
        n: 20_000,
        d: 20,
        num_clusters: 3,
        noise_fraction: 0.1,
        max_cluster_dims: 6,
        seed: 11,
        ..SyntheticSpec::default()
    });
    let store = BlockStore::new(256 * 1024, 3);
    store.write("dataset.bin", &persist::to_bytes(&data.dataset));
    println!(
        "staged dataset.bin: {} blocks, {} bytes written (×3 replication)",
        store.num_blocks("dataset.bin").unwrap(),
        store.bytes_written()
    );
    let dataset = persist::from_bytes(&store.read("dataset.bin").unwrap()).unwrap();

    // Model an 8-worker cluster explicitly: straggler mitigation needs
    // idle workers to launch backups (with `threads: 0` the engine sizes
    // the pool to the local cores, which may be a single one).
    let configs: [(&str, MrConfig); 3] = [
        (
            "healthy cluster",
            MrConfig {
                split_size: 1024,
                threads: 8,
                ..MrConfig::default()
            },
        ),
        (
            "15% task failure rate (retries)",
            MrConfig {
                split_size: 1024,
                threads: 8,
                fault: Some(FaultPlan::new(0.15, 7)),
                max_attempts: 20,
                ..MrConfig::default()
            },
        ),
        (
            "20% stragglers + speculative backups",
            MrConfig {
                split_size: 1024,
                threads: 8,
                straggler: Some(StragglerPlan::new(0.2, 800, 3)),
                speculative: true,
                ..MrConfig::default()
            },
        ),
    ];

    let mut reference = None;
    for (label, config) in configs {
        let engine = Engine::new(config);
        let start = Instant::now();
        let result = P3cPlusMrLight::new(&engine, P3cParams::default())
            .cluster(&dataset)
            .expect("pipeline run");
        let elapsed = start.elapsed();
        let metrics = engine.cluster_metrics();
        let failed: u64 = metrics.jobs().iter().map(|j| j.failed_attempts).sum();
        let spec_attempts: u64 = metrics.jobs().iter().map(|j| j.speculative_attempts).sum();
        let spec_wins: u64 = metrics.jobs().iter().map(|j| j.speculative_wins).sum();
        println!(
            "\n{label}:\n  {} clusters in {:.2}s over {} jobs \
             ({} failed attempts retried, {} backups launched, {} backups won)",
            result.clustering.num_clusters(),
            elapsed.as_secs_f64(),
            metrics.num_jobs(),
            failed,
            spec_attempts,
            spec_wins,
        );
        match &reference {
            None => reference = Some(result.clustering),
            Some(expected) => {
                assert_eq!(
                    &result.clustering, expected,
                    "fault handling must be invisible in the results"
                );
                println!("  results identical to the healthy run ✓");
            }
        }
    }
}
