//! Offline stub of `parking_lot` 0.12: the subset of the API this
//! workspace uses, implemented over `std::sync` primitives (poisoning
//! is swallowed, matching parking_lot's no-poison semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync as sys;

/// A mutual exclusion primitive (std-backed, non-poisoning).
pub struct Mutex<T: ?Sized> {
    inner: sys::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sys::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sys::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sys::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard of [`Mutex::lock`]. Holds the std guard in an `Option`
/// so [`Condvar::wait`] can temporarily release and re-acquire it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sys::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sys::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sys::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (std-backed, non-poisoning).
pub struct RwLock<T: ?Sized> {
    inner: sys::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sys::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// RAII guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sys::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard of [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sys::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_notify() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
