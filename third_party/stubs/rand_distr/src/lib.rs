//! Offline stub of `rand_distr` 0.4: the `Normal` distribution (via
//! Box–Muller), which is all this workspace samples.

pub use rand::distributions::Distribution;
use rand::Rng;

/// Error from invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution's standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; statelessly uses the cosine branch so
        // sampling stays a pure function of the RNG stream.
        const UNIT: f64 = 1.0 / 9_007_199_254_740_992.0; // 2^-53
        let u1 = loop {
            let u = (rng.next_u64() >> 11) as f64 * UNIT;
            if u > 0.0 {
                break u;
            }
        };
        let u2 = (rng.next_u64() >> 11) as f64 * UNIT;
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_moments_are_plausible() {
        let g = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }
}
