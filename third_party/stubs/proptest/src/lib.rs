//! Offline stub of `proptest`: the `proptest!` macro expands each
//! property into an ordinary `#[test]` whose body is wrapped in
//! `if false { ... }` — everything *typechecks* (so strategy helpers
//! and imports used only inside the macro stay "used" for lint
//! purposes) but no strategy is ever sampled and no property body ever
//! executes. Offline builds therefore do not run property tests; they
//! only compile them.

use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Expands properties into never-executing `#[test]`s (see crate docs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        const _: fn() = || {
            let _ = $cfg;
        };
        $crate::proptest! { $($rest)* }
    };
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_variables, unreachable_code, clippy::all)]
                if false {
                    $(let $p = $crate::sample(&$s);)*
                    $body
                }
            }
        )*
    };
}

/// Typechecking aid for the `proptest!` expansion: names the value type
/// of a strategy. Only reachable from `if false` blocks.
pub fn sample<S: strategy::Strategy>(_strategy: &S) -> S::Value {
    panic!("offline stub: proptest strategies are never sampled")
}

/// Offline `prop_assert!`: plain `assert!` (never executed).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// Offline `prop_assert_eq!`: plain `assert_eq!` (never executed).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

/// Offline `prop_assert_ne!`: plain `assert_ne!` (never executed).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => {
        assert_ne!($($args)*)
    };
}

/// Offline `prop_assume!`: early-returns when the assumption fails
/// (never executed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

/// Runner configuration; only typechecked, never consulted.
#[derive(Clone, Debug, Default)]
pub struct ProptestConfig {
    /// Requested number of test cases (ignored offline).
    pub cases: u32,
}

impl ProptestConfig {
    /// Config requesting `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Marker strategy producing any value of `T`.
pub struct Any<T>(PhantomData<T>);

/// Matches `proptest::prelude::any::<T>()`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

/// Value-producing strategy markers.
pub mod strategy {
    use super::*;

    /// Marker version of proptest's `Strategy`: carries only the value
    /// type and the combinator signatures, so `impl Strategy<Value = T>`
    /// return types typecheck. Nothing is ever generated.
    pub trait Strategy: Sized {
        /// The type of value this strategy describes.
        type Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F> {
            Map { source: self, map }
        }

        /// Chains into a dependent strategy produced by `f`.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, map: F) -> FlatMap<Self, F> {
            FlatMap { source: self, map }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        #[allow(dead_code)]
        source: S,
        #[allow(dead_code)]
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
    }

    /// Result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        #[allow(dead_code)]
        source: S,
        #[allow(dead_code)]
        map: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
    }

    /// Strategy producing exactly one value.
    pub struct Just<T>(pub T);

    impl<T> Strategy for Just<T> {
        type Value = T;
    }

    impl<T> Strategy for Any<T> {
        type Value = T;
    }

    impl<T> Strategy for Range<T> {
        type Value = T;
    }

    impl<T> Strategy for RangeInclusive<T> {
        type Value = T;
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F2);
}

/// Collection size specifications accepted by [`collection`] functions.
pub struct SizeRange;

impl From<usize> for SizeRange {
    fn from(_: usize) -> Self {
        SizeRange
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(_: Range<usize>) -> Self {
        SizeRange
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(_: RangeInclusive<usize>) -> Self {
        SizeRange
    }
}

/// Collection strategy markers (`prop::collection::*`).
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S>(#[allow(dead_code)] S);

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }

    /// Vector of values from `element`, with `size` elements.
    pub fn vec<S: Strategy>(element: S, _size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy(element)
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V>(#[allow(dead_code)] K, #[allow(dead_code)] V);

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
    }

    /// Map with keys from `key` and values from `value`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        _size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy(key, value)
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S>(#[allow(dead_code)] S);

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
    }

    /// Set of values from `element`.
    pub fn btree_set<S: Strategy>(element: S, _size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy(element)
    }
}

/// Prelude matching `proptest::prelude::*` imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn composed() -> impl Strategy<Value = Vec<(usize, f64)>> {
        prop::collection::vec((0usize..4, 0.0f64..1.0), 1..8)
    }

    #[test]
    fn strategies_typecheck() {
        let _ = composed().prop_map(|v| v.len());
        let _ = (0usize..3).prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n));
        let _ = ProptestConfig::with_cases(4);
        let _ = any::<u64>();
        let _ = Just(1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2))]

        /// Compiles but never executes its body.
        #[test]
        fn never_runs(x in 0usize..10, (a, b) in (0.0f64..1.0, 0u64..4)) {
            prop_assume!(x > 0);
            prop_assert!(a < 2.0, "a was {a}");
            prop_assert_eq!(b.min(4), b);
            prop_assert_ne!(x, usize::MAX);
            unreachable!("proptest stub must not run bodies");
        }
    }
}
