//! Offline stub of `criterion` 0.5: enough API for the workspace's
//! bench targets to compile (and run each bench body exactly once when
//! invoked via `cargo bench`, as a smoke check — no statistics).

use std::fmt::Display;

/// Re-export shape of criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (ignored by the stub).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Runs the routine (once, in the stub).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (ignored).
    pub fn measurement_time(&mut self, _dur: std::time::Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("bench(stub) {}/{id}: running once", self.name);
        f(&mut Bencher { _private: () });
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        eprintln!("bench(stub) {}/{id}: running once", self.name);
        f(&mut Bencher { _private: () }, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("bench(stub) {id}: running once");
        f(&mut Bencher { _private: () });
        self
    }
}

/// Declares a group-runner function calling each bench target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
