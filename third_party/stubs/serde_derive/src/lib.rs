//! Offline stub of `serde_derive`: emits *empty* `Serialize` /
//! `Deserialize` marker impls (the paired `serde` stub's traits have no
//! methods). Handles non-generic structs and enums, which covers every
//! derive site in this workspace; a generic target fails to compile
//! loudly rather than silently misbehaving.

use proc_macro::{TokenStream, TokenTree};

/// Finds the name of the struct/enum a derive was applied to.
/// Returns `(name, has_generics)`.
fn target_name(input: TokenStream) -> (String, bool) {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let generic = matches!(
                        iter.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return (name.to_string(), generic);
                }
            }
        }
    }
    panic!("serde_derive stub: no struct/enum name found in derive input");
}

fn emit(input: TokenStream, which: &str) -> TokenStream {
    let (name, generic) = target_name(input);
    if generic {
        // Real serde_derive handles generics; this stub deliberately
        // does not (no generic type in this workspace derives serde).
        return format!(
            "compile_error!(\"serde_derive stub cannot derive {which} for generic type {name}\");"
        )
        .parse()
        .expect("valid compile_error tokens");
    }
    let imp = match which {
        "Serialize" => format!("impl ::serde::Serialize for {name} {{}}"),
        _ => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}"),
    };
    imp.parse().expect("valid impl tokens")
}

/// Derives the `Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, "Serialize")
}

/// Derives the `Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, "Deserialize")
}
