//! Offline stub of `bytes` 1.x: a cheaply cloneable immutable byte
//! container over `Arc<[u8]>` — the subset this workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, immutable contiguous bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a `Bytes` of the sub-range (copying; the real crate
    /// shares the allocation, which callers cannot observe).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Self::copy_from_slice(&self.data[range])
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.data.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&*c, b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
