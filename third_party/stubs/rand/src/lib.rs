//! Offline stub of `rand` 0.8: the deterministic, seedable subset this
//! workspace uses. `StdRng` is xoshiro256++ (seeded via SplitMix64), so
//! all streams are fully reproducible from a seed; no entropy sources
//! exist in this stub by design (the workspace's determinism audit
//! forbids them anyway).

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A deterministic RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanding it with SplitMix64 (the
    /// same expansion `rand_core` 0.6 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    /// The workspace's standard deterministic RNG: xoshiro256++.
    /// (The real crate uses ChaCha12; any fixed high-quality generator
    /// satisfies the workspace's seeded-reproducibility contract.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sampling distributions.
pub mod distributions {
    use crate::Rng;

    /// Types that can produce values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<'a, T, D: Distribution<T> + ?Sized> Distribution<T> for &'a D {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// The "natural" distribution per type: uniform over the value
    /// range for integers, uniform in `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits → [0, 1) with full double precision.
            (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / 16_777_216.0)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform-range sampling machinery (the `gen_range` back end).
    pub mod uniform {
        use crate::Rng;

        /// Types with a uniform sampler over a bounded range.
        pub trait SampleUniform: Copy + PartialOrd {
            /// Draws uniformly from `[lo, hi)` (or `[lo, hi]` when
            /// `inclusive`).
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        macro_rules! uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: Rng + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                        assert!(span > 0, "cannot sample from an empty range");
                        let draw = (rng.next_u64() as u128 % span as u128) as i128;
                        (lo as i128 + draw) as $t
                    }
                }
            )*};
        }
        uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: Rng + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                    ) -> Self {
                        assert!(lo <= hi, "cannot sample from an empty range");
                        let unit =
                            (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
                        lo + ((hi - lo) as f64 * unit) as $t
                    }
                }
            )*};
        }
        uniform_float!(f32, f64);

        /// Ranges usable with [`Rng::gen_range`](crate::Rng::gen_range).
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                T::sample_between(rng, lo, hi, true)
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use crate::distributions::uniform::SampleUniform;
    use crate::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_between(rng, 0, i, true);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_between(rng, 0, self.len(), false)])
            }
        }
    }
}

pub use distributions::Distribution;

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;
    use crate::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
