//! Offline stub of `serde` 1.x: `Serialize`/`Deserialize` as marker
//! traits. The paired `serde_json` stub does not inspect values (it
//! serializes everything as `{}` and refuses to deserialize), so the
//! traits carry no methods; the derive macros emit empty impls.

/// Marker for serializable types.
pub trait Serialize {}

/// Marker for deserializable types.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Deserialization half of the API surface.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Serialization half of the API surface.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! mark_both {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

mark_both!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64,
    String, std::time::Duration, ()
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<T: Serialize> Serialize for [T] {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S: Default> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}

impl<T: ?Sized + Serialize> Serialize for &T {}

macro_rules! mark_tuples {
    ($(($($n:ident),+)),* $(,)?) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {}
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {}
    )*};
}

mark_tuples!((A), (A, B), (A, B, C), (A, B, C, D));
