//! Offline stub of `serde_json`: serialization succeeds with the
//! constant `"{}"`, deserialization always fails with an error whose
//! message contains `offline stub` (tests in this workspace match on
//! that marker to distinguish the stub from a real serde_json).

use std::fmt;

/// Error type of the stub: every deserialization returns one.
pub struct Error {
    msg: String,
}

impl Error {
    fn stub(what: &str) -> Self {
        Self {
            msg: format!("offline stub: serde_json cannot {what}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes any value as the constant `"{}"`.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok("{}".to_string())
}

/// Pretty variant of [`to_string`]; also `"{}"`.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok("{}".to_string())
}

/// Serializes to a writer (writes `{}`).
pub fn to_writer<W: std::io::Write, T: ?Sized + serde::Serialize>(
    mut writer: W,
    _value: &T,
) -> Result<()> {
    writer
        .write_all(b"{}")
        .map_err(|_| Error::stub("write serialized output"))
}

/// Deserialization is unavailable offline; always errors.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error::stub("deserialize from a string"))
}

/// Deserialization is unavailable offline; always errors.
pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T> {
    Err(Error::stub("deserialize from bytes"))
}

/// Deserialization is unavailable offline; always errors.
pub fn from_reader<R: std::io::Read, T: serde::de::DeserializeOwned>(_rdr: R) -> Result<T> {
    Err(Error::stub("deserialize from a reader"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn serializes_to_empty_object() {
        assert_eq!(crate::to_string(&1u32).unwrap(), "{}");
        assert_eq!(crate::to_string_pretty(&"x".len()).unwrap(), "{}");
    }

    #[test]
    fn deserialize_error_names_the_stub() {
        let e = crate::from_str::<u32>("1").unwrap_err();
        assert!(e.to_string().contains("offline stub"));
    }
}
