//! Offline stub of `crossbeam` 0.8: the `thread::scope` subset this
//! workspace uses, implemented over `std::thread::scope` (Rust ≥ 1.63).

/// Scoped threads (crossbeam-utils API shape over std scoped threads).
pub mod thread {
    use std::panic::AssertUnwindSafe;

    /// A scope for spawning borrowing threads; handed to the closure of
    /// [`scope`] and to every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope
        /// (crossbeam's signature), so threads may spawn more threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread; joining returns the thread's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its value or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope: all threads spawned inside are joined before it
    /// returns. Returns `Err` with the first panic payload if the
    /// closure or an unjoined child panicked (crossbeam's contract).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawn_join() {
        let data = vec![1, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|s2| s2.spawn(|_| 7).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
