#!/usr/bin/env bash
# Full CI gate for the workspace.
#
# Tier 1 (must always pass, run first):
#   cargo build --release
#   cargo test -q
# Then: the kernels and codec microbenchmarks at smoke scale, archiving
# target/ci/BENCH_{kernels,codec}.json (results/ keeps the committed
# full-scale numbers; the smoke runs must not overwrite them), and a
# rustdoc pass with warnings denied (missing docs on the data-plane
# crates and broken intra-doc links fail the build).
# Tier 2 (lint + formatting):
#   cargo clippy --all-targets -- -D warnings
#   cargo fmt --check
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier 1: cargo build --release"
cargo build --release

echo "==> tier 1: cargo test -q"
cargo test -q

echo "==> kernels microbenchmark (smoke) -> target/ci/BENCH_kernels.json"
./target/release/experiments --smoke --out target/ci kernels > /dev/null
test -s target/ci/BENCH_kernels.json

echo "==> codec microbenchmark (smoke) -> target/ci/BENCH_codec.json"
./target/release/experiments --smoke --out target/ci codec > /dev/null
test -s target/ci/BENCH_codec.json

echo "==> rustdoc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> tier 2: cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier 2: cargo fmt --check"
cargo fmt --check

echo "==> CI green"
