#!/usr/bin/env bash
# Full CI gate for the workspace.
#
# Tier 1 (must always pass, run first):
#   cargo build --release
#   cargo test -q
# Tier 2 (lint + formatting):
#   cargo clippy --all-targets -- -D warnings
#   cargo fmt --check
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier 1: cargo build --release"
cargo build --release

echo "==> tier 1: cargo test -q"
cargo test -q

echo "==> tier 2: cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier 2: cargo fmt --check"
cargo fmt --check

echo "==> CI green"
