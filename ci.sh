#!/usr/bin/env bash
# Full CI gate for the workspace.
#
# Tier 1 (must always pass, run first):
#   cargo build --release
#   cargo test -q
# Then: the tier-1 suite re-run under the multi-process shuffle backend
# (P3C_BACKEND=process:2), the parallel-kernel bit-identity tests swept
# over P3C_THREADS, the lane-kernel bit-identity tests swept over
# P3C_LANES, the kernels/codec/backend/service/recovery benchmarks at
# smoke scale, archiving target/ci/BENCH_*.json (results/ keeps the
# committed full-scale numbers; the smoke runs must not overwrite them),
# a stdin-scripted `p3c serve` session exercising the service line
# protocol under a tight LRU cache budget, a crash-recovery smoke
# (SIGKILL a durable serve mid-session, restart on the same data dir,
# and require the recovered fingerprint to match the pre-kill one), and
# a rustdoc pass with warnings denied (missing docs on the data-plane
# crates and broken intra-doc links fail the build).
# Tier 2 (lint + formatting + invariants):
#   cargo clippy --all-targets -- -D warnings
#   cargo fmt --check
#   cargo run -p p3c-audit          (determinism/concurrency/lock invariants)
#   cargo test --features lockcheck (tier-1 under runtime lock-rank asserts)
#   loom models                     (engine kernel + admission condvar)
#   cargo +nightly miri             (dataset byte paths; skipped if absent)
#   ThreadSanitizer probe           (service + distrib; skipped if absent)
set -euo pipefail
cd "$(dirname "$0")"

# Offline bootstrap: stage the committed dependency stubs (no-op when
# the build environment already provides /tmp/stubs) and keep the cargo
# registry off the network-less home directory.
./scripts/stage-stubs.sh
export CARGO_HOME="${CARGO_HOME:-/tmp/carghome}"

echo "==> tier 1: cargo build --release"
cargo build --release

echo "==> tier 1: cargo test -q"
cargo test -q

# Workspace binaries the later legs invoke (experiments, the p3c CLI
# that hosts the worker subcommand, the audit tool) are not part of the
# root package; build them all explicitly.
echo "==> workspace binaries: cargo build --release --workspace"
cargo build --release --workspace

# The whole tier-1 suite again, but with every engine defaulting to the
# multi-process backend: two worker subprocesses per engine holding the
# shuffle behind the length-prefixed TCP protocol (DESIGN.md §12). The
# suite's byte-identity assertions then hold across the real data plane.
echo "==> process backend (2 workers): tier-1 suite over the TCP shuffle"
P3C_BACKEND=process:2 P3C_WORKER_BIN="$PWD/target/release/p3c" cargo test -q

# The parallel kernels must be bit-identical across thread counts
# (DESIGN.md §11). The tests sweep threads {1, 2, 8} internally; the
# env sweep additionally pins the P3C_THREADS-driven default path.
echo "==> thread matrix: parallel kernel bit-identity under P3C_THREADS"
for t in 1 2 8; do
    P3C_THREADS=$t cargo test -q --test parallel_kernels > /dev/null
done

# The lane-batched kernels must be bit-identical to the scalar family
# for every lane mode × thread count (DESIGN.md §13). The tests pin
# both families internally via set_lane_mode; the env sweep additionally
# pins the P3C_LANES-driven default path on both settings.
echo "==> lane matrix: lane-kernel bit-identity under P3C_LANES"
for lanes in 0 1; do
    P3C_LANES=$lanes cargo test -q --test lane_kernels > /dev/null
done

echo "==> kernels microbenchmark (smoke) -> target/ci/BENCH_kernels.json"
./target/release/experiments --smoke --out target/ci kernels > /dev/null
test -s target/ci/BENCH_kernels.json
# The lane rows must exist in the report: their in-bench asserts are the
# smoke-scale guard that both kernel families agree bit-for-bit.
grep -q "lanes vs scalar blocked (1 worker)" target/ci/BENCH_kernels.json
grep -q "lanes vs scalar blocked (8 workers)" target/ci/BENCH_kernels.json

echo "==> codec microbenchmark (smoke) -> target/ci/BENCH_codec.json"
./target/release/experiments --smoke --out target/ci codec > /dev/null
test -s target/ci/BENCH_codec.json

echo "==> backend benchmark (smoke) -> target/ci/BENCH_backend.json"
P3C_WORKER_BIN="$PWD/target/release/p3c" \
    ./target/release/experiments --smoke --out target/ci backend > /dev/null
test -s target/ci/BENCH_backend.json

echo "==> service benchmark (smoke) -> target/ci/BENCH_service.json"
./target/release/experiments --smoke --out target/ci service > /dev/null
test -s target/ci/BENCH_service.json

echo "==> recovery benchmark (smoke) -> target/ci/BENCH_recovery.json"
./target/release/experiments --smoke --out target/ci recovery > /dev/null
test -s target/ci/BENCH_recovery.json

# The clustering service end to end through the line protocol: two
# appends and re-clusters on a stdin-scripted `p3c serve` under a cache
# budget small enough to force LRU evictions, then the in-process
# incremental-vs-batch identity check. The greps pin the contract:
# clusters come back, the models are byte-identical, and the store
# actually evicted and reloaded spilled blocks.
echo "==> service smoke: p3c serve line protocol + LRU eviction"
./target/release/p3c serve --cache-budget 64k > target/ci/serve-smoke.log <<'EOF'
create demo
append demo --synthetic 1200x8 --clusters 3 --seed 7
recluster demo
append demo --synthetic 900x8 --clusters 3 --seed 8
recluster demo
verify demo
stats
quit
EOF
grep -q "clusters" target/ci/serve-smoke.log
grep -q "incremental and batch models identical" target/ci/serve-smoke.log
grep -Eq "evictions=[1-9]" target/ci/serve-smoke.log
grep -Eq "spill_loads=[1-9]" target/ci/serve-smoke.log

# Crash recovery end to end through the real binary: a durable serve is
# SIGKILLed after journaling two appends and publishing a model — no
# shutdown path runs — then a second serve on the same data directory
# must report the recovery, re-cluster to the *same fingerprint*, and
# pass the incremental-vs-batch verify (DESIGN.md §16). The sleep on
# stdin keeps the session open so the kill lands mid-connection.
echo "==> crash smoke: SIGKILL durable serve, restart, fingerprint identity"
rm -rf target/ci/serve-data
{
    printf 'create demo\n'
    printf 'append demo --synthetic 1200x8 --clusters 3 --seed 7\n'
    printf 'append demo --synthetic 900x8 --clusters 3 --seed 8\n'
    printf 'recluster demo\n'
    sleep 60
} | ./target/release/p3c serve --data-dir target/ci/serve-data --snapshot-every 2 \
    > target/ci/serve-crash-1.log 2> target/ci/serve-crash-1.err &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "fingerprint=" target/ci/serve-crash-1.log 2> /dev/null && break
    sleep 0.2
done
grep -q "fingerprint=" target/ci/serve-crash-1.log
kill -9 "$SERVE_PID" 2> /dev/null || true
wait "$SERVE_PID" 2> /dev/null || true
FP_BEFORE=$(grep -o "fingerprint=[0-9a-f]*" target/ci/serve-crash-1.log | head -n 1)
./target/release/p3c serve --data-dir target/ci/serve-data --snapshot-every 2 \
    > target/ci/serve-crash-2.log 2> target/ci/serve-crash-2.err <<'EOF'
recluster demo
verify demo
quit
EOF
grep -q "recovered 1 tenant" target/ci/serve-crash-2.err
FP_AFTER=$(grep -o "fingerprint=[0-9a-f]*" target/ci/serve-crash-2.log | head -n 1)
test -n "$FP_BEFORE"
test "$FP_BEFORE" = "$FP_AFTER"
grep -q "incremental and batch models identical" target/ci/serve-crash-2.log

echo "==> rustdoc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> tier 2: cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier 2: cargo fmt --check"
cargo fmt --check

echo "==> tier 2: determinism, concurrency & lock-discipline audit"
# One run covers both rule sets: the DESIGN.md §10 invariant catalog and
# the §15 lock rules (rank order + acquisition-graph acyclicity,
# blocking-under-lock, guard hygiene). Zero unwaived violations or fail.
cargo run -q -p p3c-audit

# The declared lock ranks, enforced at runtime: the lockcheck feature
# turns every RankedMutex/RankedRwLock acquisition into an assertion on
# a thread-local held-rank stack, so the whole tier-1 suite doubles as a
# dynamic probe of the §15 hierarchy.
echo "==> tier 2: lockcheck (runtime lock-rank assertions) tier-1 rerun"
cargo test -q --features lockcheck

# The durability invariants, explicitly: the journal/snapshot codec
# property tests (torn tails, checksum rejection, tmp+rename atomicity)
# and the randomized crash-recovery suite (random cut offsets, recovered
# prefix byte-identical to batch). Both already run inside tier 1; this
# leg keeps them visible and independently runnable.
echo "==> tier 2: durability: journal codec + crash-recovery tests"
cargo test -q -p p3c-dataset journal > /dev/null
cargo test -q --test durability_recovery > /dev/null

echo "==> tier 2: loom models (engine kernel + admission condvar)"
RUSTFLAGS="--cfg loom" cargo test -q -p p3c-mapreduce --test loom_models

# Miri catches UB on the codec/rowblock/dataset byte paths; it needs a
# nightly toolchain with the miri component, which the pinned stable
# container doesn't ship. Probe and skip gracefully rather than fail.
if cargo +nightly miri --version > /dev/null 2>&1; then
    echo "==> tier 2: cargo miri (dataset byte paths)"
    cargo +nightly miri test -p p3c-dataset
else
    echo "==> tier 2: miri unavailable (no nightly toolchain) — skipped"
fi

# ThreadSanitizer needs nightly -Z build-std; when a nightly toolchain
# with rust-src is around, sweep the lock-heavy suites (service,
# distributed backends) for data races the lexical auditor cannot see.
# The loom models cover the same protocols deterministically, so the
# probe is best-effort, never a gate on the stable container.
if cargo +nightly --version > /dev/null 2>&1 \
    && rustup component list --toolchain nightly 2> /dev/null | grep -q "rust-src (installed)"; then
    echo "==> tier 2: ThreadSanitizer probe (service + distributed tests)"
    RUSTFLAGS="-Z sanitizer=thread" RUSTDOCFLAGS="-Z sanitizer=thread" \
        cargo +nightly test -Z build-std --target x86_64-unknown-linux-gnu \
        -q -p p3c-mapreduce --lib -- service:: distrib:: || {
            echo "ThreadSanitizer probe failed" >&2
            exit 1
        }
else
    echo "==> tier 2: ThreadSanitizer unavailable (no nightly rust-src) — skipped"
fi

echo "==> CI green"
