#!/usr/bin/env bash
# Full CI gate for the workspace.
#
# Tier 1 (must always pass, run first):
#   cargo build --release
#   cargo test -q
# Then: the parallel-kernel bit-identity tests swept over P3C_THREADS,
# the kernels and codec microbenchmarks at smoke scale, archiving
# target/ci/BENCH_{kernels,codec}.json (results/ keeps the committed
# full-scale numbers; the smoke runs must not overwrite them), and a
# rustdoc pass with warnings denied (missing docs on the data-plane
# crates and broken intra-doc links fail the build).
# Tier 2 (lint + formatting + invariants):
#   cargo clippy --all-targets -- -D warnings
#   cargo fmt --check
#   cargo run -p p3c-audit          (determinism/concurrency invariants)
#   loom models                     (engine kernel, all interleavings)
#   cargo +nightly miri             (dataset byte paths; skipped if absent)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier 1: cargo build --release"
cargo build --release

echo "==> tier 1: cargo test -q"
cargo test -q

# The parallel kernels must be bit-identical across thread counts
# (DESIGN.md §11). The tests sweep threads {1, 2, 8} internally; the
# env sweep additionally pins the P3C_THREADS-driven default path.
echo "==> thread matrix: parallel kernel bit-identity under P3C_THREADS"
for t in 1 2 8; do
    P3C_THREADS=$t cargo test -q --test parallel_kernels > /dev/null
done

echo "==> kernels microbenchmark (smoke) -> target/ci/BENCH_kernels.json"
./target/release/experiments --smoke --out target/ci kernels > /dev/null
test -s target/ci/BENCH_kernels.json

echo "==> codec microbenchmark (smoke) -> target/ci/BENCH_codec.json"
./target/release/experiments --smoke --out target/ci codec > /dev/null
test -s target/ci/BENCH_codec.json

echo "==> rustdoc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> tier 2: cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier 2: cargo fmt --check"
cargo fmt --check

echo "==> tier 2: determinism & concurrency audit"
cargo run -q -p p3c-audit

echo "==> tier 2: loom models (engine concurrency kernel)"
RUSTFLAGS="--cfg loom" cargo test -q -p p3c-mapreduce --test loom_models

# Miri catches UB on the codec/rowblock/dataset byte paths; it needs a
# nightly toolchain with the miri component, which the pinned stable
# container doesn't ship. Probe and skip gracefully rather than fail.
if cargo +nightly miri --version > /dev/null 2>&1; then
    echo "==> tier 2: cargo miri (dataset byte paths)"
    cargo +nightly miri test -p p3c-dataset
else
    echo "==> tier 2: miri unavailable (no nightly toolchain) — skipped"
fi

# ThreadSanitizer would need nightly -Z build-std; the loom models above
# cover the same interleavings deterministically, so TSan stays optional.

echo "==> CI green"
