//! Hand-computed regression tests for the quality measures' *orderings*.
//!
//! The PR-5 RNIA ordering failure (tests/end_to_end.rs
//! `quality_measures_agree_on_orderings`) was a product bug, not a
//! measure bug: redundancy filtering kept overlap-region artifacts —
//! statistically proven intersection signatures of true clusters —
//! whose inflated subspaces dragged RNIA below a visibly worse
//! clustering while E4SC still ranked them correctly. These tests pin
//! the measures themselves on tiny clusterings whose scores are exact
//! fractions, including an artifact-shaped candidate, so a future
//! regression in either the measures or the filter shows up with
//! hand-checkable numbers.

use p3c_suite::dataset::{Clustering, ProjectedCluster};
use p3c_suite::eval::{ce, e4sc, rnia};
use std::collections::BTreeSet;

fn cluster(points: impl IntoIterator<Item = usize>, attrs: &[usize]) -> ProjectedCluster {
    ProjectedCluster::new(
        points.into_iter().collect(),
        attrs.iter().copied().collect::<BTreeSet<_>>(),
        vec![],
    )
}

/// Ground truth: H1 = points 0..10 on {0,1}, H2 = points 10..20 on {2,3}.
fn hidden() -> Clustering {
    Clustering::new(
        vec![cluster(0..10, &[0, 1]), cluster(10..20, &[2, 3])],
        vec![],
    )
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

#[test]
fn exact_recovery_scores_one_on_all_measures() {
    let h = hidden();
    assert!(close(rnia(&h, &h), 1.0));
    assert!(close(ce(&h, &h), 1.0));
    assert!(close(e4sc(&h, &h), 1.0));
}

#[test]
fn missing_cluster_scores_hand_computed_values() {
    // Only H1 found. Subobjects: found 20, hidden 40, intersection 20.
    let found = Clustering::new(vec![cluster(0..10, &[0, 1])], vec![]);
    let h = hidden();
    // RNIA = I/U = 20/40.
    assert!(close(rnia(&found, &h), 0.5), "{}", rnia(&found, &h));
    // CE: best matching covers 20 of the 40-subobject union.
    assert!(close(ce(&found, &h), 0.5), "{}", ce(&found, &h));
    // E4SC: coverage avg(1, 0) = 1/2, precision 1 → harmonic 2/3.
    assert!(close(e4sc(&found, &h), 2.0 / 3.0), "{}", e4sc(&found, &h));
}

#[test]
fn half_cluster_scores_hand_computed_values() {
    // H1 with half its points + H2 exact. Found subobjects 30 of union 40.
    let found = Clustering::new(
        vec![cluster(0..5, &[0, 1]), cluster(10..20, &[2, 3])],
        vec![],
    );
    let h = hidden();
    assert!(close(rnia(&found, &h), 0.75));
    assert!(close(ce(&found, &h), 0.75));
    // Pairwise F1 of the half cluster vs H1: 2·10/(10+20) = 2/3, so
    // coverage = precision = (2/3 + 1)/2 = 5/6, harmonic mean 5/6.
    assert!(close(e4sc(&found, &h), 5.0 / 6.0), "{}", e4sc(&found, &h));
}

/// An overlap-artifact-shaped candidate: a spurious high-dimensional
/// cluster straddling both true clusters (points 5..15 on all four
/// attributes), next to a correct H1. This is the exact shape the
/// redundancy filter used to keep. Every measure must rank it strictly
/// below exact recovery AND strictly below the merely-degraded
/// half-cluster candidate, so artifacts can never look better than
/// honest partial recovery.
#[test]
fn overlap_artifact_ranks_below_partial_recovery_on_all_measures() {
    let h = hidden();
    let artifact = Clustering::new(
        vec![cluster(0..10, &[0, 1]), cluster(5..15, &[0, 1, 2, 3])],
        vec![],
    );
    let partial = Clustering::new(
        vec![cluster(0..5, &[0, 1]), cluster(10..20, &[2, 3])],
        vec![],
    );
    for (name, measure) in [
        ("rnia", rnia as fn(&Clustering, &Clustering) -> f64),
        ("ce", ce),
        ("e4sc", e4sc),
    ] {
        let m_exact = measure(&h, &h);
        let m_partial = measure(&partial, &h);
        let m_artifact = measure(&artifact, &h);
        assert!(
            m_exact > m_partial && m_partial > m_artifact,
            "{name}: exact {m_exact} > partial {m_partial} > artifact {m_artifact} violated"
        );
    }
}

/// The three measures agree on the ordering of a monotone degradation
/// chain — the property the end-to-end `quality_measures_agree_on_orderings`
/// test asserts on real pipeline output, pinned here on exact inputs.
#[test]
fn measures_agree_on_degradation_chain() {
    let h = hidden();
    let chain = [
        Clustering::new(
            vec![cluster(0..10, &[0, 1]), cluster(10..20, &[2, 3])],
            vec![],
        ),
        Clustering::new(
            vec![cluster(0..5, &[0, 1]), cluster(10..20, &[2, 3])],
            vec![],
        ),
        Clustering::new(vec![cluster(0..10, &[0, 1])], vec![]),
        Clustering::new(vec![cluster(0..5, &[0, 1])], vec![]),
    ];
    for (name, measure) in [
        ("rnia", rnia as fn(&Clustering, &Clustering) -> f64),
        ("ce", ce),
        ("e4sc", e4sc),
    ] {
        let scores: Vec<f64> = chain.iter().map(|c| measure(c, &h)).collect();
        for w in scores.windows(2) {
            assert!(
                w[0] > w[1],
                "{name} not strictly decreasing along the chain: {scores:?}"
            );
        }
    }
}
