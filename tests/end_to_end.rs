//! Cross-crate integration tests: the full algorithm stack from data
//! generation through clustering to quality measurement.

use p3c_suite::core::config::{OutlierMethod, P3cParams};
use p3c_suite::core::mr::{P3cPlusMr, P3cPlusMrLight};
use p3c_suite::core::p3c::P3c;
use p3c_suite::core::p3cplus::{P3cPlus, P3cPlusLight};
use p3c_suite::datagen::{generate, SyntheticSpec};
use p3c_suite::eval::{ce, e4sc, f1_object, rnia};
use p3c_suite::mapreduce::{Engine, MrConfig};

fn spec(n: usize, k: usize, noise: f64, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        n,
        d: 16,
        num_clusters: k,
        noise_fraction: noise,
        max_cluster_dims: 6,
        seed,
        ..SyntheticSpec::default()
    }
}

fn engine() -> Engine {
    Engine::new(MrConfig {
        num_reducers: 4,
        split_size: 1024,
        ..MrConfig::default()
    })
}

#[test]
fn all_variants_find_easy_clusters_with_good_quality() {
    let data = generate(&spec(4000, 3, 0.05, 1));
    let params = P3cParams::default();

    let serial_full = P3cPlus::new(params.clone()).cluster(&data.dataset);
    let serial_light = P3cPlusLight::new(params.clone()).cluster(&data.dataset);
    let eng = engine();
    let mr_full = P3cPlusMr::new(&eng, params.clone())
        .cluster(&data.dataset)
        .unwrap();
    let mr_light = P3cPlusMrLight::new(&eng, params)
        .cluster(&data.dataset)
        .unwrap();

    for (name, result) in [
        ("serial full", &serial_full),
        ("serial light", &serial_light),
        ("mr full", &mr_full),
        ("mr light", &mr_light),
    ] {
        let q = e4sc(&result.clustering, &data.ground_truth);
        assert!(q > 0.6, "{name}: E4SC = {q}");
        assert_eq!(result.clustering.num_clusters(), 3, "{name}");
    }
}

#[test]
fn mr_and_serial_produce_identical_cluster_cores() {
    let data = generate(&spec(3000, 3, 0.1, 2));
    let params = P3cParams::default();
    let serial = P3cPlusLight::new(params.clone()).cluster(&data.dataset);
    let eng = engine();
    let mr = P3cPlusMrLight::new(&eng, params)
        .cluster(&data.dataset)
        .unwrap();
    let serial_sigs: Vec<String> = serial
        .cores
        .iter()
        .map(|c| c.signature.to_string())
        .collect();
    let mr_sigs: Vec<String> = mr.cores.iter().map(|c| c.signature.to_string()).collect();
    assert_eq!(serial_sigs, mr_sigs);
}

#[test]
fn quality_measures_agree_on_orderings() {
    // A good clustering must dominate a bad one under every measure.
    let data = generate(&spec(3000, 3, 0.1, 3));
    let good = P3cPlusLight::new(P3cParams::default())
        .cluster(&data.dataset)
        .clustering;
    // "Bad": original P3C with a loose threshold and no filtering.
    let bad = P3c::new(0.05).cluster(&data.dataset).clustering;
    type Measure = fn(&p3c_suite::dataset::Clustering, &p3c_suite::dataset::Clustering) -> f64;
    let measures: [(&str, Measure); 3] = [("e4sc", e4sc), ("rnia", rnia), ("ce", ce)];
    for (name, m) in measures {
        let q_good = m(&good, &data.ground_truth);
        let q_bad = m(&bad, &data.ground_truth);
        assert!(
            q_good >= q_bad - 0.05,
            "{name}: good {q_good} vs bad {q_bad}"
        );
    }
    let _ = f1_object(&good, &data.ground_truth);
}

#[test]
fn p3cplus_beats_original_p3c_on_noisy_overlapping_data() {
    let data = generate(&spec(6000, 5, 0.2, 4));
    let plus = P3cPlusLight::new(P3cParams::default()).cluster(&data.dataset);
    let original = P3c::new(1e-4).cluster(&data.dataset);
    let q_plus = e4sc(&plus.clustering, &data.ground_truth);
    let q_orig = e4sc(&original.clustering, &data.ground_truth);
    assert!(
        q_plus > q_orig,
        "P3C+ {q_plus} should beat P3C {q_orig} (cores: {} vs {})",
        plus.stats.cores,
        original.stats.cores
    );
}

#[test]
fn mcd_extension_runs_end_to_end_serial_and_mr() {
    let data = generate(&spec(2500, 3, 0.1, 8));
    let params = P3cParams {
        outlier: OutlierMethod::Mcd,
        ..P3cParams::default()
    };
    let serial = P3cPlus::new(params.clone()).cluster(&data.dataset);
    assert_eq!(serial.clustering.num_clusters(), 3);
    assert!(e4sc(&serial.clustering, &data.ground_truth) > 0.6);
    let eng = engine();
    let mr = P3cPlusMr::new(&eng, params).cluster(&data.dataset).unwrap();
    assert_eq!(mr.clustering.num_clusters(), 3);
    // MCD charges its concentration jobs to the ledger.
    let mcd_jobs = eng
        .cluster_metrics()
        .jobs()
        .iter()
        .filter(|j| j.job_name.starts_with("p3c-mcd") || j.job_name == "p3c-od-mcd")
        .count();
    assert_eq!(mcd_jobs, 5, "2 steps × 2 jobs + OD job");
}

#[test]
fn outlier_points_do_not_appear_in_clusters() {
    let data = generate(&spec(3000, 3, 0.1, 5));
    let result = P3cPlus::new(P3cParams {
        outlier: OutlierMethod::Mvb,
        ..P3cParams::default()
    })
    .cluster(&data.dataset);
    let outliers: std::collections::BTreeSet<usize> =
        result.clustering.outliers.iter().copied().collect();
    for cluster in &result.clustering.clusters {
        for &p in &cluster.points {
            assert!(!outliers.contains(&p), "point {p} both member and outlier");
        }
    }
}

#[test]
fn results_are_deterministic_across_runs_and_thread_counts() {
    let data = generate(&spec(2500, 3, 0.1, 6));
    let run = |threads: usize| {
        let eng = Engine::new(MrConfig {
            num_reducers: 4,
            split_size: 512,
            threads,
            ..MrConfig::default()
        });
        P3cPlusMrLight::new(&eng, P3cParams::default())
            .cluster(&data.dataset)
            .unwrap()
            .clustering
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a, b, "thread count changed the clustering");
}

#[test]
fn normalization_roundtrip_preserves_clustering() {
    // Cluster normalized data, then map interval bounds back to original
    // coordinates through the NormalizationMap.
    let data = generate(&spec(2000, 2, 0.05, 7));
    // Scale the dataset away from [0,1].
    let scaled_rows: Vec<Vec<f64>> = data
        .dataset
        .rows()
        .map(|r| r.iter().map(|&v| v * 250.0 - 100.0).collect())
        .collect();
    let scaled = p3c_suite::dataset::Dataset::from_rows(scaled_rows);
    assert!(!scaled.is_normalized());
    let (normalized, map) = scaled.normalize();
    assert!(normalized.is_normalized());
    let result = P3cPlusLight::new(P3cParams::default()).cluster(&normalized);
    assert!(!result.clustering.clusters.is_empty());
    for cluster in &result.clustering.clusters {
        for iv in &cluster.intervals {
            let lo = map.denormalize(iv.attr, iv.lo);
            let hi = map.denormalize(iv.attr, iv.hi);
            assert!(lo <= hi);
            assert!(
                (-100.0..=150.0).contains(&lo),
                "lo {lo} out of original range"
            );
        }
    }
}
