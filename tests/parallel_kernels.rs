//! Bit-identity of the block-parallel serial-path kernels (DESIGN.md
//! §11): the EM E-step ([`estep_blocked`]), the columnar binning scan
//! ([`build_histograms_columnar_threads`]), the EM projection scan
//! ([`project_rows_blocked`]), and the signature-proving pass inside
//! [`generate_cluster_cores`] must produce outputs that are
//! **bit-for-bit identical for every thread count**, because all use
//! the same block structure and merge per-block partials in fixed
//! block-index order regardless of scheduling.
//!
//! Sizes are chosen to exercise arbitrary block boundaries: below one
//! block, exactly one block, one-past-a-boundary, and many blocks with
//! a ragged tail.

use p3c_suite::core::config::P3cParams;
use p3c_suite::core::cores::generate_cluster_cores;
use p3c_suite::core::em::{
    em_fit, em_fit_threads, estep_blocked, initialize_from_cores, project_rows_blocked, Component,
    MixtureModel,
};
use p3c_suite::core::histogram::{build_histograms_columnar, build_histograms_columnar_threads};
use p3c_suite::core::{Interval, Signature};
use p3c_suite::linalg::{CovarianceAccumulator, Matrix};

/// Cheap deterministic value stream (xorshift64*) — no RNG crate needed
/// and stable across platforms.
fn stream(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed.wrapping_mul(2685821657736338717).max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn accs_bits(accs: &[CovarianceAccumulator]) -> Vec<(u64, Vec<u64>, Vec<u64>)> {
    accs.iter()
        .map(|a| {
            let mean: Vec<u64> = a
                .mean()
                .unwrap_or_default()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let cov = a.covariance_ml();
            let d = a.dim();
            let mut cov_bits = Vec::new();
            if let Some(cov) = cov {
                for i in 0..d {
                    for j in 0..d {
                        cov_bits.push(cov[(i, j)].to_bits());
                    }
                }
            }
            (a.total_weight().to_bits(), mean, cov_bits)
        })
        .collect()
}

/// A 3-component mixture over 2 of 4 attributes, away from the trivial
/// identity layout, so projection and per-component solves all matter.
fn test_model() -> MixtureModel {
    let comps = [(0.2, 0.3, 0.45), (0.7, 0.6, 0.35), (0.4, 0.8, 0.2)]
        .iter()
        .map(|&(mx, my, w)| {
            let mut cov = Matrix::identity(2);
            cov[(0, 0)] = 0.02;
            cov[(1, 1)] = 0.03;
            cov[(0, 1)] = 0.005;
            cov[(1, 0)] = 0.005;
            Component {
                mean: vec![mx, my],
                cov,
                weight: w,
            }
        })
        .collect();
    MixtureModel {
        arel: vec![1, 3],
        components: comps,
    }
}

#[test]
fn estep_is_bit_identical_across_thread_counts() {
    let model = test_model();
    let eval = model.evaluator();
    // Block size is 128 points: cover sub-block, exact-block, ragged
    // multi-block, and larger ragged cases.
    for n in [1usize, 127, 128, 129, 1000, 2500] {
        let mut next = stream(n as u64 + 7);
        let proj: Vec<f64> = (0..n * 2).map(|_| next()).collect();
        let (base_accs, base_ll) = estep_blocked(&eval, &proj, 1);
        for threads in [2usize, 8] {
            let (accs, ll) = estep_blocked(&eval, &proj, threads);
            assert_eq!(
                ll.to_bits(),
                base_ll.to_bits(),
                "loglik differs at n={n}, threads={threads}"
            );
            assert_eq!(
                accs_bits(&accs),
                accs_bits(&base_accs),
                "accumulators differ at n={n}, threads={threads}"
            );
        }
    }
}

#[test]
fn em_fit_is_bit_identical_across_thread_counts() {
    // Two separable blobs in attributes {1, 3} of a 4-dim dataset.
    let mut next = stream(42);
    let mut data: Vec<Vec<f64>> = Vec::new();
    for i in 0..600 {
        let (cx, cy) = if i % 2 == 0 { (0.2, 0.25) } else { (0.75, 0.8) };
        data.push(vec![
            next(),
            cx + (next() - 0.5) * 0.1,
            next(),
            cy + (next() - 0.5) * 0.1,
        ]);
    }
    let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
    let sig = |a_lo: usize| {
        Signature::new(vec![
            Interval::new(1, a_lo, a_lo + 2, 10),
            Interval::new(3, a_lo, a_lo + 2, 10),
        ])
    };
    let cores = vec![
        p3c_suite::core::cores::ClusterCore {
            signature: sig(1),
            support: 300.0,
            expected: 1.0,
        },
        p3c_suite::core::cores::ClusterCore {
            signature: sig(7),
            support: 300.0,
            expected: 1.0,
        },
    ];
    let init = initialize_from_cores(&cores, &rows, &[1, 3]);
    let base = em_fit(init.clone(), &rows, 10, 1e-6);
    for threads in [2usize, 8] {
        let fit = em_fit_threads(init.clone(), &rows, 10, 1e-6, threads);
        assert_eq!(fit.iterations, base.iterations, "threads={threads}");
        let base_bits: Vec<u64> = base.loglik_history.iter().map(|v| v.to_bits()).collect();
        let bits: Vec<u64> = fit.loglik_history.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits, base_bits,
            "loglik history differs at threads={threads}"
        );
        for (a, b) in fit.model.components.iter().zip(&base.model.components) {
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            let mean_a: Vec<u64> = a.mean.iter().map(|v| v.to_bits()).collect();
            let mean_b: Vec<u64> = b.mean.iter().map(|v| v.to_bits()).collect();
            assert_eq!(mean_a, mean_b, "means differ at threads={threads}");
            for i in 0..2 {
                for j in 0..2 {
                    assert_eq!(
                        a.cov[(i, j)].to_bits(),
                        b.cov[(i, j)].to_bits(),
                        "cov differs at threads={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn projection_scan_is_bit_identical_across_thread_counts() {
    // Block size is 1024 rows: cover sub-block, exact-block, ragged
    // multi-block, and a larger ragged case.
    for n in [1usize, 1023, 1024, 1025, 5000] {
        let mut next = stream(n as u64 + 3);
        let data: Vec<Vec<f64>> = (0..n).map(|_| (0..5).map(|_| next()).collect()).collect();
        let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let arel = [3usize, 0, 4];
        let base = project_rows_blocked(&rows, &arel, 1);
        for threads in [2usize, 8] {
            let par = project_rows_blocked(&rows, &arel, threads);
            let base_bits: Vec<u64> = base.iter().map(|v| v.to_bits()).collect();
            let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                par_bits, base_bits,
                "projection differs at n={n}, {threads}"
            );
        }
    }
}

#[test]
fn core_proving_is_bit_identical_across_thread_counts() {
    // Two planted boxes over attributes {0,1,2} of a 4-dim dataset plus
    // uniform background: enough candidates per level that the proving
    // pass spans several 64-candidate blocks at level 1 boundaries.
    let mut next = stream(99);
    let mut data: Vec<Vec<f64>> = Vec::new();
    for i in 0..3000 {
        let row = match i % 3 {
            0 => vec![
                0.15 + next() * 0.15,
                0.15 + next() * 0.15,
                0.15 + next() * 0.15,
                next(),
            ],
            1 => vec![
                0.65 + next() * 0.15,
                0.65 + next() * 0.15,
                0.65 + next() * 0.15,
                next(),
            ],
            _ => vec![next(), next(), next(), next()],
        };
        data.push(row);
    }
    let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
    let mut intervals = Vec::new();
    for attr in 0..3 {
        for lo in 0..9 {
            intervals.push(Interval::new(attr, lo, lo + 1, 10));
        }
    }
    let base = generate_cluster_cores(
        &intervals,
        &rows,
        &P3cParams {
            threads: 1,
            ..P3cParams::default()
        },
    );
    assert!(base.stats.total_proven > 0, "stats: {:?}", base.stats);
    for threads in [2usize, 8] {
        let par = generate_cluster_cores(
            &intervals,
            &rows,
            &P3cParams {
                threads,
                ..P3cParams::default()
            },
        );
        assert_eq!(par.cores, base.cores, "cores differ at threads={threads}");
        let base_proven: Vec<(&Signature, u64)> =
            base.proven.iter().map(|(s, c)| (s, c.to_bits())).collect();
        let par_proven: Vec<(&Signature, u64)> =
            par.proven.iter().map(|(s, c)| (s, c.to_bits())).collect();
        assert_eq!(par_proven, base_proven, "proven differ at {threads}");
        assert_eq!(
            format!("{:?}", par.stats),
            format!("{:?}", base.stats),
            "stats differ at threads={threads}"
        );
    }
}

#[test]
fn columnar_histograms_are_bit_identical_across_thread_counts() {
    // d=4 → 8192 rows per scan block: cover sub-block, multi-block with
    // a ragged tail, and a block-boundary-exact size.
    for (n, d) in [(100usize, 4usize), (8192, 4), (20000, 4), (3000, 7)] {
        let mut next = stream((n + d) as u64);
        let data: Vec<f64> = (0..n * d).map(|_| next()).collect();
        let bins: Vec<usize> = (0..d).map(|j| 5 + j).collect();
        let base = build_histograms_columnar(n, d, &data, &bins);
        for threads in [2usize, 8] {
            let par = build_histograms_columnar_threads(n, d, &data, &bins, threads);
            assert_eq!(
                par, base,
                "histograms differ at n={n}, d={d}, threads={threads}"
            );
        }
    }
}
