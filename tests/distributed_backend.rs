//! End-to-end byte-identity of the multi-process distributed backend.
//!
//! DESIGN.md §12: the engine's determinism contract must survive the
//! real data plane — worker subprocesses holding the shuffle, reached
//! over the length-prefixed TCP protocol. These tests run all three MR
//! pipelines (P3C+-MR, MR-Light, BoW) under `ProcessBackend` with 1, 2,
//! and 4 workers and require results identical to the in-process
//! `Local` backend (which `tests/end_to_end.rs` in turn anchors against
//! the serial implementations), including under an injected worker
//! kill mid-pipeline.
//!
//! The worker subprocesses run the `p3c_worker_harness` binary of this
//! package — Cargo builds it before integration tests and exposes its
//! path as `CARGO_BIN_EXE_p3c_worker_harness`, so the suite needs no
//! separately built CLI.

use p3c_suite::bow::{Bow, BowConfig};
use p3c_suite::core::config::P3cParams;
use p3c_suite::core::mr::{P3cPlusMr, P3cPlusMrLight};
use p3c_suite::datagen::{generate, SyntheticSpec};
use p3c_suite::dataset::Clustering;
use p3c_suite::mapreduce::distrib::{
    Backend, BackendChoice, BackendError, MapOutput, ProcessBackend, StageSpec,
};
use p3c_suite::mapreduce::{Engine, FaultPlan, MrConfig};
use std::sync::Once;

/// Points every `ProcessBackend` in this test binary at the harness
/// worker (idempotent; `Once` keeps the env write single-threaded).
fn use_harness_worker() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::env::set_var("P3C_WORKER_BIN", env!("CARGO_BIN_EXE_p3c_worker_harness"));
    });
}

fn spec(n: usize, k: usize, noise: f64, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        n,
        d: 16,
        num_clusters: k,
        noise_fraction: noise,
        max_cluster_dims: 6,
        seed,
        ..SyntheticSpec::default()
    }
}

fn engine_with(backend: BackendChoice) -> Engine {
    Engine::new(MrConfig {
        num_reducers: 4,
        split_size: 512,
        backend,
        ..MrConfig::default()
    })
}

fn process(workers: usize) -> BackendChoice {
    BackendChoice::Process {
        workers,
        kill: None,
    }
}

/// Total of one per-job counter over every job the engine ran.
fn job_total(eng: &Engine, f: impl Fn(&p3c_suite::mapreduce::JobMetrics) -> u64) -> u64 {
    eng.cluster_metrics().jobs().iter().map(f).sum()
}

/// Runs `cluster` under the local backend and under the process backend
/// with 1, 2, and 4 workers; asserts every distributed clustering equals
/// the local one and that the TCP data plane was actually exercised.
fn assert_identical_across_worker_counts(pipeline: &str, cluster: impl Fn(&Engine) -> Clustering) {
    use_harness_worker();
    let baseline = cluster(&engine_with(BackendChoice::Local));
    for workers in [1usize, 2, 4] {
        let eng = engine_with(process(workers));
        let got = cluster(&eng);
        assert_eq!(
            got, baseline,
            "{pipeline}: process backend with {workers} workers diverged from local"
        );
        assert!(
            job_total(&eng, |j| j.shuffle_fetches) > 0,
            "{pipeline}: no shuffle fetches — the distributed plane was bypassed"
        );
        assert!(
            job_total(&eng, |j| j.shuffle_bytes_moved) > 0,
            "{pipeline}: no bytes moved through the workers"
        );
    }
}

#[test]
fn p3cplus_mr_is_byte_identical_across_process_worker_counts() {
    let data = generate(&spec(2000, 3, 0.05, 11));
    assert_identical_across_worker_counts("p3c+-mr", |eng| {
        P3cPlusMr::new(eng, P3cParams::default())
            .cluster(&data.dataset)
            .expect("pipeline runs")
            .clustering
    });
}

#[test]
fn mr_light_is_byte_identical_across_process_worker_counts() {
    let data = generate(&spec(2000, 3, 0.05, 11));
    assert_identical_across_worker_counts("mr-light", |eng| {
        P3cPlusMrLight::new(eng, P3cParams::default())
            .cluster(&data.dataset)
            .expect("pipeline runs")
            .clustering
    });
}

#[test]
fn bow_is_byte_identical_across_process_worker_counts() {
    let data = generate(&spec(2000, 3, 0.05, 11));
    let config = BowConfig {
        num_partitions: 4,
        seed: 3,
        ..BowConfig::default()
    };
    assert_identical_across_worker_counts("bow", |eng| {
        Bow::new(eng, config.clone())
            .cluster(&data.dataset)
            .expect("pipeline runs")
            .clustering
    });
}

/// A worker killed mid-stage (the `KILL` frame drops its partitions and
/// exits) must be restarted and its lost map outputs re-executed, with
/// the final clustering unchanged — the paper's fault-tolerance claim on
/// the real protocol.
#[test]
fn worker_kill_mid_pipeline_recovers_byte_identically() {
    use_harness_worker();
    let data = generate(&spec(2000, 3, 0.05, 12));
    let params = P3cParams::default();
    let baseline = P3cPlusMrLight::new(&engine_with(BackendChoice::Local), params.clone())
        .cluster(&data.dataset)
        .expect("baseline runs")
        .clustering;
    // Probability 1 ⇒ one injected kill per shuffle stage.
    let eng = engine_with(BackendChoice::Process {
        workers: 2,
        kill: Some(FaultPlan::new(1.0, 5)),
    });
    let got = P3cPlusMrLight::new(&eng, params)
        .cluster(&data.dataset)
        .expect("pipeline survives worker kills")
        .clustering;
    assert_eq!(got, baseline, "worker kills changed the clustering");
    assert!(
        job_total(&eng, |j| j.worker_restarts) >= 1,
        "kill plan fired on no stage"
    );
}

/// Deterministic loss scenario on the raw backend API: with two workers,
/// a kill injected while storing map 2 takes down worker 0 (= 2 % 2)
/// *after* map 0 stored there — map 0's partitions are gone, map 1's
/// (worker 1) survive, and re-executing map 0 restores service.
#[test]
fn killed_worker_loses_partitions_and_reexecution_restores_them() {
    use_harness_worker();
    let job = "kill-stage";
    // FaultPlan is a pure function of (seed, job, task, attempt); pick
    // the first seed whose first firing task in this job is map 2.
    let seed = (0u64..10_000)
        .find(|&s| {
            let p = FaultPlan::new(0.5, s);
            !p.should_fail(job, 0, 0) && !p.should_fail(job, 1, 0) && p.should_fail(job, 2, 0)
        })
        .expect("some seed fires first on map 2");
    let backend = ProcessBackend::new(2, Some(FaultPlan::new(0.5, seed)));
    let spec = StageSpec {
        shuffle_id: 9,
        job: job.to_string(),
        num_maps: 3,
        num_reducers: 1,
    };
    let outputs: Vec<MapOutput> = (0..3)
        .map(|m| MapOutput {
            map_id: m,
            partitions: vec![format!("map-{m}-bytes").into_bytes()],
        })
        .collect();
    backend
        .submit_stage(&spec, outputs.clone())
        .expect("stage submits across the injected kill");

    // Map 0 lived on the killed worker 0: lost. Map 1 (worker 1) and
    // map 2 (stored on the restarted worker 0) survive.
    assert!(
        matches!(
            backend.fetch_shuffle(&spec, 0, 0),
            Err(BackendError::Lost { map_id: 0 })
        ),
        "map 0 should be reported lost after its worker died"
    );
    assert_eq!(backend.fetch_shuffle(&spec, 1, 0).unwrap(), b"map-1-bytes");
    assert_eq!(backend.fetch_shuffle(&spec, 2, 0).unwrap(), b"map-2-bytes");

    // The engine's recovery path: re-execute the lost map, restore it.
    backend
        .restore_map(&spec, outputs[0].clone())
        .expect("restore succeeds");
    assert_eq!(backend.fetch_shuffle(&spec, 0, 0).unwrap(), b"map-0-bytes");

    let stats = backend.finish_stage(&spec);
    assert_eq!(stats.worker_restarts, 1, "exactly one injected restart");
    backend.shutdown();
}
