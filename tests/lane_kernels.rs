//! Bit-identity of the lane-batched (8-wide) E-step kernels against
//! the scalar blocked kernels (DESIGN.md §13): for every kernel family
//! × thread count, the serial E-step, the MR EM pipeline, and the MR
//! outlier pipelines must produce **bit-for-bit identical** outputs.
//! Both families bin points into the same lane groups and merge
//! per-block partials in fixed block-index order, and the lane kernels
//! keep each lane's accumulation chain in the scalar order, so neither
//! the kernel choice nor the scheduling may change a single bit.
//!
//! Sizes exercise the tail contract: fewer points than one lane group
//! (`npts < 8`), ragged lane groups (`npts % 8 != 0`), and E-step block
//! boundaries (the 512-point block: one-under, exact, one-over).

use p3c_suite::core::cores::ClusterCore;
use p3c_suite::core::em::{estep_blocked_with_lanes, set_lane_mode, Component, MixtureModel};
use p3c_suite::core::mr::em::{em_fit_mr, initialize_from_cores_mr};
use p3c_suite::core::mr::outlier::{od_job_mvb, od_job_naive};
use p3c_suite::core::outlier::{assign_clusters, detect_outliers_naive};
use p3c_suite::core::{Interval, Signature};
use p3c_suite::linalg::{CovarianceAccumulator, Matrix};
use p3c_suite::mapreduce::{Engine, MrConfig};
use std::sync::{Arc, Mutex};

/// Cheap deterministic value stream (xorshift64*) — no RNG crate needed
/// and stable across platforms.
fn stream(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed.wrapping_mul(2685821657736338717).max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn accs_bits(accs: &[CovarianceAccumulator]) -> Vec<(u64, Vec<u64>, Vec<u64>)> {
    accs.iter()
        .map(|a| {
            let mean: Vec<u64> = a
                .mean()
                .unwrap_or_default()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let cov = a.covariance_ml();
            let d = a.dim();
            let mut cov_bits = Vec::new();
            if let Some(cov) = cov {
                for i in 0..d {
                    for j in 0..d {
                        cov_bits.push(cov[(i, j)].to_bits());
                    }
                }
            }
            (a.total_weight().to_bits(), mean, cov_bits)
        })
        .collect()
}

/// A 3-component mixture over 2 of 4 attributes, away from the trivial
/// identity layout, so projection and per-component solves all matter.
fn test_model() -> MixtureModel {
    let comps = [(0.2, 0.3, 0.45), (0.7, 0.6, 0.35), (0.4, 0.8, 0.2)]
        .iter()
        .map(|&(mx, my, w)| {
            let mut cov = Matrix::identity(2);
            cov[(0, 0)] = 0.02;
            cov[(1, 1)] = 0.03;
            cov[(0, 1)] = 0.005;
            cov[(1, 0)] = 0.005;
            Component {
                mean: vec![mx, my],
                cov,
                weight: w,
            }
        })
        .collect();
    MixtureModel {
        arel: vec![1, 3],
        components: comps,
    }
}

/// The lane-mode override is process-global ([`set_lane_mode`]); tests
/// that flip it must not interleave. The guard also restores the
/// environment default on drop, so a panicking assertion cannot leak a
/// forced mode into unrelated tests.
static LANE_MODE_LOCK: Mutex<()> = Mutex::new(());

struct LaneModeGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl<'a> LaneModeGuard<'a> {
    fn lock() -> Self {
        // A poisoned lock only means another lane test failed; the
        // guard below still restores the mode, so proceed.
        Self(
            LANE_MODE_LOCK
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        )
    }
}

impl Drop for LaneModeGuard<'_> {
    fn drop(&mut self) {
        set_lane_mode(None);
    }
}

#[test]
fn serial_estep_matrix_is_bit_identical_across_lanes_and_threads() {
    let model = test_model();
    let eval = model.evaluator();
    // Lane groups are 8 points, E-step blocks 512: cover sub-lane-group,
    // ragged lane groups, block boundaries, and a large ragged case.
    for n in [1usize, 7, 8, 9, 511, 512, 513, 2500] {
        let mut next = stream(n as u64 + 7);
        let proj: Vec<f64> = (0..n * 2).map(|_| next()).collect();
        let (base_accs, base_ll) = estep_blocked_with_lanes(&eval, &proj, 1, false);
        let base_bits = accs_bits(&base_accs);
        for lanes in [false, true] {
            for threads in [1usize, 2, 8] {
                let (accs, ll) = estep_blocked_with_lanes(&eval, &proj, threads, lanes);
                assert_eq!(
                    ll.to_bits(),
                    base_ll.to_bits(),
                    "loglik differs at n={n}, lanes={lanes}, threads={threads}"
                );
                assert_eq!(
                    accs_bits(&accs),
                    base_bits,
                    "accumulators differ at n={n}, lanes={lanes}, threads={threads}"
                );
            }
        }
    }
}

#[test]
fn lane_tail_blocks_match_scalar_at_every_size() {
    // Property sweep over every residue class mod 8 (several times
    // over), including all sizes below one lane group: the masked tail
    // path must agree with the scalar kernel point for point.
    let model = test_model();
    let eval = model.evaluator();
    for n in 1usize..=33 {
        let mut next = stream(0xC0FFEE + n as u64);
        let proj: Vec<f64> = (0..n * 2).map(|_| next()).collect();
        let (scalar_accs, scalar_ll) = estep_blocked_with_lanes(&eval, &proj, 1, false);
        let (lane_accs, lane_ll) = estep_blocked_with_lanes(&eval, &proj, 1, true);
        assert_eq!(
            lane_ll.to_bits(),
            scalar_ll.to_bits(),
            "tail loglik differs at n={n}"
        );
        assert_eq!(
            accs_bits(&lane_accs),
            accs_bits(&scalar_accs),
            "tail accumulators differ at n={n}"
        );
    }
}

/// Two separable blobs in attributes {1, 3} of a 4-dim dataset, plus
/// the cores that seed EM on them (same layout as the thread-count
/// matrix in `parallel_kernels.rs`).
fn blob_rows() -> Vec<Vec<f64>> {
    let mut next = stream(42);
    (0..600)
        .map(|i| {
            let (cx, cy) = if i % 2 == 0 { (0.2, 0.25) } else { (0.75, 0.8) };
            vec![
                next(),
                cx + (next() - 0.5) * 0.1,
                next(),
                cy + (next() - 0.5) * 0.1,
            ]
        })
        .collect()
}

fn blob_cores() -> Vec<ClusterCore> {
    let sig = |a_lo: usize| {
        Signature::new(vec![
            Interval::new(1, a_lo, a_lo + 2, 10),
            Interval::new(3, a_lo, a_lo + 2, 10),
        ])
    };
    vec![
        ClusterCore {
            signature: sig(1),
            support: 300.0,
            expected: 1.0,
        },
        ClusterCore {
            signature: sig(7),
            support: 300.0,
            expected: 1.0,
        },
    ]
}

/// `(weight, mean, cov)` bit patterns of one component.
type ComponentBits = (u64, Vec<u64>, Vec<u64>);

fn model_bits(model: &MixtureModel) -> Vec<ComponentBits> {
    model
        .components
        .iter()
        .map(|c| {
            let mean: Vec<u64> = c.mean.iter().map(|v| v.to_bits()).collect();
            let d = c.mean.len();
            let mut cov = Vec::new();
            for i in 0..d {
                for j in 0..d {
                    cov.push(c.cov[(i, j)].to_bits());
                }
            }
            (c.weight.to_bits(), mean, cov)
        })
        .collect()
}

#[test]
fn mr_em_pipeline_is_bit_identical_across_lanes_and_threads() {
    let _guard = LaneModeGuard::lock();
    let data = blob_rows();
    let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();

    let mut baseline: Option<(Vec<u64>, Vec<ComponentBits>)> = None;
    for lanes in [false, true] {
        set_lane_mode(Some(lanes));
        for threads in [1usize, 2, 8] {
            // split_size 71: ragged splits whose point counts are not
            // lane-group multiples, so the mapper tail path runs.
            let engine = Engine::new(MrConfig {
                split_size: 71,
                threads,
                ..MrConfig::default()
            });
            let init = initialize_from_cores_mr(&engine, &blob_cores(), &rows, &[1, 3]).unwrap();
            let fit = em_fit_mr(&engine, init, &rows, 5, 1e-8).unwrap();
            let ll_bits: Vec<u64> = fit.loglik_history.iter().map(|v| v.to_bits()).collect();
            let bits = (ll_bits, model_bits(&fit.model));
            match &baseline {
                None => baseline = Some(bits),
                Some(base) => assert_eq!(
                    &bits, base,
                    "MR EM differs at lanes={lanes}, threads={threads}"
                ),
            }
        }
    }
}

#[test]
fn mr_outlier_pipelines_are_bit_identical_across_lanes_and_threads() {
    let _guard = LaneModeGuard::lock();
    let model = test_model();
    let mut next = stream(1337);
    // Mixture samples live near the component means; plant a few far
    // points so the χ² gate actually fires in both directions.
    let mut data: Vec<Vec<f64>> = (0..300)
        .map(|i| {
            let c = &model.components[i % 3];
            vec![
                next(),
                c.mean[0] + (next() - 0.5) * 0.2,
                next(),
                c.mean[1] + (next() - 0.5) * 0.2,
            ]
        })
        .collect();
    data.push(vec![0.5, 60.0, 0.5, -60.0]);
    data.push(vec![0.5, -45.0, 0.5, 45.0]);
    let rows: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
    let eval = Arc::new(model.evaluator());

    // Serial scalar reference, computed once with the mode pinned off.
    set_lane_mode(Some(false));
    let assignment = assign_clusters(&eval, &rows);
    let serial = detect_outliers_naive(&eval, &rows, &assignment, 0.001, 2);

    let mut mvb_base: Option<Vec<i64>> = None;
    for lanes in [false, true] {
        set_lane_mode(Some(lanes));
        for threads in [1usize, 2, 8] {
            // 47-record splits: ragged lane-group tails in every mapper.
            let engine = Engine::new(MrConfig {
                split_size: 47,
                threads,
                ..MrConfig::default()
            });
            let naive = od_job_naive(&engine, Arc::clone(&eval), &rows, 0.001, 2).unwrap();
            assert_eq!(
                naive, serial,
                "naive OD differs at lanes={lanes}, threads={threads}"
            );
            // MVB medians split-local medians, so it is only pinned
            // against itself across the matrix, not against serial.
            let single = Engine::new(MrConfig {
                split_size: 100_000,
                threads,
                ..MrConfig::default()
            });
            let mvb: Vec<i64> = od_job_mvb(&single, Arc::clone(&eval), &rows, 0.001, 2).unwrap();
            match &mvb_base {
                None => mvb_base = Some(mvb),
                Some(base) => assert_eq!(
                    &mvb, base,
                    "MVB OD differs at lanes={lanes}, threads={threads}"
                ),
            }
        }
    }
}
