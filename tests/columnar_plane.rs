//! The columnar data plane: `RowBlock` round trips are lossless, both
//! MapReduce pipelines are byte-identical on row-oriented and columnar
//! input under both schedulers, and the column-scan binning kernel
//! agrees exactly with the per-row path.

use p3c_suite::core::config::P3cParams;
use p3c_suite::core::histogram::{build_histograms_columnar, build_histograms_per_attr};
use p3c_suite::core::mr::{P3cPlusMr, P3cPlusMrLight};
use p3c_suite::datagen::{generate, SyntheticSpec};
use p3c_suite::dataset::{Dataset, RowBlock};
use p3c_suite::mapreduce::{Engine, MrConfig, SchedulerChoice};
use proptest::prelude::*;

fn spec(n: usize, k: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        n,
        d: 12,
        num_clusters: k,
        noise_fraction: 0.08,
        max_cluster_dims: 5,
        seed,
        ..SyntheticSpec::default()
    }
}

fn engine() -> Engine {
    Engine::new(MrConfig {
        num_reducers: 4,
        split_size: 700,
        ..MrConfig::default()
    })
}

/// Rebuilds the dataset through an owned-rows detour and a `RowBlock`
/// round trip; both must reproduce the original flat buffer exactly.
fn columnar_round_trip(data: &Dataset) -> Dataset {
    let block = RowBlock::from(data.clone());
    assert_eq!(block.len(), data.len());
    assert_eq!(block.dim(), data.dim());
    Dataset::from(block)
}

#[test]
fn row_block_round_trip_is_lossless() {
    let data = generate(&spec(1500, 2, 5)).dataset;
    let rows: Vec<Vec<f64>> = data.rows().map(|r| r.to_vec()).collect();
    let via_rows = Dataset::from_rows(rows);
    let via_block = columnar_round_trip(&data);
    assert_eq!(via_rows, data);
    assert_eq!(via_block, data);

    // Column views agree with a per-row gather, value for value.
    let block = RowBlock::from(data.clone());
    for j in 0..data.dim() {
        let col: Vec<f64> = block.columns().col(j).to_vec();
        let gathered: Vec<f64> = data.rows().map(|r| r[j]).collect();
        assert_eq!(col, gathered, "column {j}");
    }
}

#[test]
fn mr_pipelines_byte_identical_on_row_and_columnar_input() {
    let data = generate(&spec(2500, 3, 19)).dataset;
    let columnar = columnar_round_trip(&data);
    for scheduler in [SchedulerChoice::Serial, SchedulerChoice::Dag] {
        let full_rows = P3cPlusMr::new(&engine(), P3cParams::default())
            .cluster_with(&data, scheduler)
            .unwrap();
        let full_cols = P3cPlusMr::new(&engine(), P3cParams::default())
            .cluster_with(&columnar, scheduler)
            .unwrap();
        assert_eq!(
            format!("{full_rows:?}"),
            format!("{full_cols:?}"),
            "full pipeline, {scheduler:?}"
        );

        let light_rows = P3cPlusMrLight::new(&engine(), P3cParams::default())
            .cluster_with(&data, scheduler)
            .unwrap();
        let light_cols = P3cPlusMrLight::new(&engine(), P3cParams::default())
            .cluster_with(&columnar, scheduler)
            .unwrap();
        assert_eq!(
            format!("{light_rows:?}"),
            format!("{light_cols:?}"),
            "light pipeline, {scheduler:?}"
        );
    }
}

/// Seeded twin of the property below, immune to proptest configuration.
#[test]
fn column_scan_binning_matches_per_row_seeded() {
    let data = generate(&spec(3000, 3, 23)).dataset;
    let rows: Vec<&[f64]> = data.rows().collect();
    for bins in [2usize, 5, 13, 32] {
        let per_attr = vec![bins; data.dim()];
        assert_eq!(
            build_histograms_columnar(data.len(), data.dim(), data.as_slice(), &per_attr),
            build_histograms_per_attr(&rows, &per_attr),
            "bins = {bins}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Column-scan binning over the flat buffer equals per-row binning
    /// exactly (counts are pure `+1.0` increments, so scan order cannot
    /// change the result), for arbitrary shapes and bin counts.
    #[test]
    fn column_scan_binning_matches_per_row(
        values in prop::collection::vec(0.0f64..1.0, 1..400),
        d in 1usize..8,
        bins in 1usize..24,
    ) {
        let n = values.len() / d;
        prop_assume!(n > 0);
        let flat = &values[..n * d];
        let rows: Vec<&[f64]> = flat.chunks_exact(d).collect();
        let per_attr = vec![bins; d];
        prop_assert_eq!(
            build_histograms_columnar(n, d, flat, &per_attr),
            build_histograms_per_attr(&rows, &per_attr)
        );
    }
}
