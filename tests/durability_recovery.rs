//! Crash recovery for the durable clustering service (DESIGN.md §16).
//!
//! * **Byte-identity after recovery** — a service restarted from its
//!   data directory re-clusters to exactly the model the pre-crash
//!   service produced, which is itself byte-identical to a from-scratch
//!   batch fit on the cumulative data.
//! * **Bounded replay** — recovery replays at most the journal records
//!   written since the last snapshot, not the tenant's whole history.
//! * **Torn tails** — a journal cut at an arbitrary byte (the on-disk
//!   state a mid-write crash leaves behind) recovers the longest valid
//!   record prefix, and the recovered tenant is byte-identical to batch
//!   over exactly the blocks whose records survived.
//!
//! No graceful shutdown path exists — every "restart" here drops the
//! first service without any handshake, exactly like a SIGKILL.

use p3c_suite::core::config::P3cParams;
use p3c_suite::core::incremental::IncrementalLight;
use p3c_suite::core::p3cplus::{P3cPlusLight, P3cResult};
use p3c_suite::datagen::{generate, SyntheticSpec};
use p3c_suite::dataset::journal;
use p3c_suite::dataset::{Dataset, RowBlock};
use p3c_suite::mapreduce::{ClusterService, DatasetStore};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn spec(n: usize, d: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        n,
        d,
        num_clusters: 3,
        noise_fraction: 0.1,
        max_cluster_dims: 4.min(d),
        seed,
        ..SyntheticSpec::default()
    }
}

fn chunk(block: &RowBlock, start: usize, len: usize) -> RowBlock {
    let rows: Vec<Vec<f64>> = (start..start + len)
        .map(|i| block.row(i).to_vec())
        .collect();
    RowBlock::from_rows(&rows)
}

fn batch(cumulative: RowBlock, params: &P3cParams) -> P3cResult {
    P3cPlusLight::new(params.clone()).cluster(&Dataset::from(cumulative))
}

fn assert_identical(tag: &str, inc: &P3cResult, bat: &P3cResult) {
    assert_eq!(inc.clustering, bat.clustering, "{tag}: clustering differs");
    assert_eq!(inc.cores, bat.cores, "{tag}: cores differ");
    assert_eq!(inc.stats.bins, bat.stats.bins, "{tag}");
    assert_eq!(inc.stats.outliers, bat.stats.outliers, "{tag}");
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p3c-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable(dir: &Path, snapshot_every: u64) -> ClusterService<IncrementalLight> {
    ClusterService::with_durability(Arc::new(DatasetStore::new()), None, dir, snapshot_every)
        .unwrap()
}

/// SplitMix64 — deterministic schedule/cut randomness without a
/// dependency on any particular RNG crate being functional.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

#[test]
fn recovered_service_reclusters_byte_identically() {
    let dir = tmpdir("identity");
    let params = P3cParams::default();
    let data = generate(&spec(3000, 8, 11));
    let all = RowBlock::from(data.dataset);

    // Pre-crash: appends, a retract, and a recluster, with snapshots
    // rolling every 2 records.
    let pre_crash = {
        let svc = durable(&dir, 2);
        svc.create("t", IncrementalLight::new("t", params.clone()))
            .unwrap();
        svc.append("t", chunk(&all, 0, 1000)).unwrap();
        let b = svc.append("t", chunk(&all, 1000, 1000)).unwrap();
        svc.append("t", chunk(&all, 2000, 1000)).unwrap();
        assert!(svc.retract("t", b).unwrap());
        svc.recluster("t").unwrap()
        // Dropped without any shutdown handshake — a SIGKILL.
    };

    let svc = durable(&dir, 2);
    let report = svc.recover().unwrap();
    assert_eq!(report.tenants, 1);
    assert!(report.snapshots_loaded >= 1, "{report:?}");
    let recovered = svc.recluster("t").unwrap();

    // The cumulative stream is blocks 0 and 2 (block 1 retracted).
    let blocks = [chunk(&all, 0, 1000), chunk(&all, 2000, 1000)];
    let refs: Vec<&RowBlock> = blocks.iter().collect();
    let expected = batch(RowBlock::concat(&refs), &params);
    assert_identical("recovered vs batch", &recovered.result, &expected);
    assert_identical(
        "recovered vs pre-crash",
        &recovered.result,
        &pre_crash.result,
    );

    // The recovered tenant keeps journaling: another append-and-crash
    // cycle recovers again, on top of the recovered state.
    svc.append("t", chunk(&all, 1000, 500)).unwrap();
    drop(svc);
    let svc = durable(&dir, 2);
    svc.recover().unwrap();
    let blocks = [
        chunk(&all, 0, 1000),
        chunk(&all, 2000, 1000),
        chunk(&all, 1000, 500),
    ];
    let refs: Vec<&RowBlock> = blocks.iter().collect();
    let expected = batch(RowBlock::concat(&refs), &params);
    assert_identical(
        "second recovery",
        &svc.recluster("t").unwrap().result,
        &expected,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_is_bounded_by_the_snapshot_interval() {
    let dir = tmpdir("bounded");
    let params = P3cParams::default();
    let data = generate(&spec(4000, 6, 23));
    let all = RowBlock::from(data.dataset);
    let every = 4u64;
    {
        let svc = durable(&dir, every);
        svc.create("t", IncrementalLight::new("t", params.clone()))
            .unwrap();
        let mut fed = 0;
        for _ in 0..20 {
            svc.append("t", chunk(&all, fed, 200)).unwrap();
            fed += 200;
        }
    }
    let svc = durable(&dir, every);
    let report = svc.recover().unwrap();
    assert_eq!((report.tenants, report.snapshots_loaded), (1, 1));
    // 21 mutations happened (create + 20 appends, plus bin-rule-step
    // records), but replay is bounded by the records accumulated since
    // the last snapshot — at most the interval plus the one mutation
    // that can land after the roll check.
    assert!(
        report.records_replayed <= every + 1,
        "replay not bounded by snapshot: {report:?}"
    );
    let expected = batch(chunk(&all, 0, 4000), &params);
    assert_identical(
        "bounded replay",
        &svc.recluster("t").unwrap().result,
        &expected,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_recovers_the_valid_prefix() {
    let base = tmpdir("torn");
    let params = P3cParams::default();
    let data = generate(&spec(1800, 6, 31));
    let all = RowBlock::from(data.dataset);
    let blocks = 6usize;
    let rows_per = 300usize;

    // Journal-only mode: every append is one APPEND record (plus
    // bin-rule-step records), so cutting the file exercises every
    // torn-tail case.
    let master = base.join("master");
    {
        let svc = durable(&master, 0);
        svc.create("t", IncrementalLight::new("t", params.clone()))
            .unwrap();
        for b in 0..blocks {
            svc.append("t", chunk(&all, b * rows_per, rows_per))
                .unwrap();
        }
    }
    let tenant_dir = std::fs::read_dir(&master)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.is_dir())
        .expect("tenant directory");
    let journal_bytes = std::fs::read(tenant_dir.join(journal::JOURNAL_FILE)).unwrap();
    assert!(journal_bytes.len() > 64, "journal suspiciously small");

    let mut rng = SplitMix64(0x7061_7065_7221);
    let mut shorter_than_full = 0;
    for case in 0..10u64 {
        // Cut anywhere in the file — record boundaries and mid-record
        // alike; a mid-record cut is exactly a torn write.
        let cut = 1 + rng.below(journal_bytes.len() as u64 - 1) as usize;
        let dir = base.join(format!("cut-{case}"));
        let tdir = dir.join(tenant_dir.file_name().unwrap());
        std::fs::create_dir_all(&tdir).unwrap();
        std::fs::write(tdir.join(journal::JOURNAL_FILE), &journal_bytes[..cut]).unwrap();

        let svc = durable(&dir, 0);
        let report = svc.recover().unwrap();
        if report.tenants == 0 {
            // The cut beheaded the create record: nothing durable.
            continue;
        }
        // The recovered block set must be a prefix of the appended ones.
        let ids = svc.with_tenant("t", |t| t.block_ids()).unwrap();
        let m = ids.len();
        assert!(m <= blocks, "recovered more blocks than written");
        assert_eq!(
            ids,
            (0..m as u64).collect::<Vec<_>>(),
            "recovered blocks are not the journal prefix"
        );
        if m < blocks {
            shorter_than_full += 1;
        }
        let live: Vec<RowBlock> = (0..m)
            .map(|b| chunk(&all, b * rows_per, rows_per))
            .collect();
        let refs: Vec<&RowBlock> = live.iter().collect();
        let expected = batch(RowBlock::concat(&refs), &params);
        assert_identical(
            &format!("cut {cut} of {}", journal_bytes.len()),
            &svc.recluster("t").unwrap().result,
            &expected,
        );
    }
    assert!(
        shorter_than_full > 0,
        "every random cut recovered the full history — the test never tore a record"
    );
    let _ = std::fs::remove_dir_all(&base);
}
