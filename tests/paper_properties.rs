//! Property-based integration tests of paper-level invariants, across
//! randomly drawn workload configurations.
//!
//! In offline builds the `proptest!` macro may expand to nothing,
//! leaving every item below apparently unused — keep the lint quiet
//! either way.
#![allow(unused)]

use p3c_suite::core::config::P3cParams;
use p3c_suite::core::p3cplus::P3cPlusLight;
use p3c_suite::datagen::{generate, SyntheticSpec};
use p3c_suite::eval::e4sc;
use proptest::prelude::*;

fn small_spec() -> impl Strategy<Value = SyntheticSpec> {
    (2usize..4, 0.0f64..0.15, 0u64..50, 1500usize..3000).prop_map(|(k, noise, seed, n)| {
        SyntheticSpec {
            n,
            d: 10,
            num_clusters: k,
            noise_fraction: noise,
            max_cluster_dims: 4,
            seed,
            ..SyntheticSpec::default()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every clustering is a valid object: point ids in range, clusters
    /// and outliers disjoint, intervals ordered, quality in [0,1].
    #[test]
    fn clustering_wellformedness(spec in small_spec()) {
        let data = generate(&spec);
        let result = P3cPlusLight::new(P3cParams::default()).cluster(&data.dataset);
        let n = data.dataset.len();
        let outliers: std::collections::BTreeSet<usize> =
            result.clustering.outliers.iter().copied().collect();
        for cluster in &result.clustering.clusters {
            for &p in &cluster.points {
                prop_assert!(p < n);
                prop_assert!(!outliers.contains(&p));
            }
            for iv in &cluster.intervals {
                prop_assert!(iv.lo <= iv.hi);
                prop_assert!(iv.attr < data.dataset.dim());
                prop_assert!(cluster.attributes.contains(&iv.attr));
            }
        }
        let q = e4sc(&result.clustering, &data.ground_truth);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    /// The redundancy filter never *increases* the number of cores, and
    /// never drops below zero survivors when cores exist.
    #[test]
    fn redundancy_filter_monotone(spec in small_spec()) {
        let data = generate(&spec);
        let with = P3cPlusLight::new(P3cParams::default()).cluster(&data.dataset);
        let without = P3cPlusLight::new(P3cParams {
            use_redundancy_filter: false,
            ..P3cParams::default()
        })
        .cluster(&data.dataset);
        prop_assert!(with.stats.cores <= without.stats.cores);
        if without.stats.cores > 0 {
            prop_assert!(with.stats.cores > 0, "filter erased all cores");
        }
    }

    /// Stricter Poisson thresholds can only shrink the proven set.
    #[test]
    fn stricter_alpha_fewer_proven(spec in small_spec()) {
        let data = generate(&spec);
        let loose = P3cPlusLight::new(P3cParams {
            alpha_poisson: 1e-4,
            use_redundancy_filter: false,
            ..P3cParams::default()
        })
        .cluster(&data.dataset);
        let strict = P3cPlusLight::new(P3cParams {
            alpha_poisson: 1e-40,
            use_redundancy_filter: false,
            ..P3cParams::default()
        })
        .cluster(&data.dataset);
        prop_assert!(
            strict.stats.core_gen.total_proven <= loose.stats.core_gen.total_proven
        );
    }
}
