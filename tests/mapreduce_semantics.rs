//! Integration tests of the MapReduce substrate under realistic use:
//! fault tolerance through a full pipeline, metrics plausibility, and the
//! block-store staging path.

use p3c_suite::core::config::P3cParams;
use p3c_suite::core::mr::{P3cPlusMr, P3cPlusMrLight};
use p3c_suite::datagen::{generate, SyntheticSpec};
use p3c_suite::dataset::persist;
use p3c_suite::mapreduce::{BlockStore, Engine, FaultPlan, MrConfig};

fn data() -> p3c_suite::datagen::GeneratedData {
    generate(&SyntheticSpec {
        n: 2500,
        d: 12,
        num_clusters: 3,
        noise_fraction: 0.1,
        max_cluster_dims: 5,
        seed: 11,
        ..SyntheticSpec::default()
    })
}

#[test]
fn full_pipeline_survives_aggressive_fault_injection() {
    let d = data();
    let clean_engine = Engine::new(MrConfig {
        num_reducers: 4,
        split_size: 256,
        ..MrConfig::default()
    });
    let faulty_engine = Engine::new(MrConfig {
        num_reducers: 4,
        split_size: 256,
        fault: Some(FaultPlan::new(0.25, 2024)),
        max_attempts: 25,
        ..MrConfig::default()
    });
    let clean = P3cPlusMr::new(&clean_engine, P3cParams::default())
        .cluster(&d.dataset)
        .unwrap();
    let faulty = P3cPlusMr::new(&faulty_engine, P3cParams::default())
        .cluster(&d.dataset)
        .unwrap();
    // Same cores, same point partition — retries must be invisible.
    assert_eq!(
        clean.clustering.clusters.len(),
        faulty.clustering.clusters.len()
    );
    for (a, b) in clean
        .clustering
        .clusters
        .iter()
        .zip(&faulty.clustering.clusters)
    {
        assert_eq!(a.points, b.points);
        assert_eq!(a.attributes, b.attributes);
    }
    let failed: u64 = faulty_engine
        .cluster_metrics()
        .jobs()
        .iter()
        .map(|j| j.failed_attempts)
        .sum();
    assert!(failed > 50, "only {failed} injected failures at 25% rate");
}

#[test]
fn job_ledger_reflects_pipeline_structure() {
    let d = data();
    let engine = Engine::new(MrConfig {
        num_reducers: 4,
        split_size: 512,
        ..MrConfig::default()
    });
    P3cPlusMr::new(&engine, P3cParams::default())
        .cluster(&d.dataset)
        .unwrap();
    let metrics = engine.cluster_metrics();
    let names: Vec<&str> = metrics.jobs().iter().map(|j| j.job_name.as_str()).collect();
    // Structural expectations from the paper's Section 5.
    assert_eq!(names[0], "p3c-histogram");
    assert!(names.iter().any(|n| n.starts_with("p3c-prove-candidates")));
    assert!(names.iter().any(|n| n.starts_with("p3c-em-init")));
    assert!(names.iter().any(|n| n.starts_with("p3c-em-step")));
    assert!(names
        .iter()
        .any(|n| n.starts_with("p3c-mvb") || n.starts_with("p3c-od")));
    assert!(names
        .iter()
        .any(|n| n.starts_with("p3c-attribute-inspection")));
    assert!(names
        .iter()
        .any(|n| n.starts_with("p3c-interval-tightening")));
    // Every job consumed data or was an explicit bookkeeping marker.
    for job in metrics.jobs() {
        assert!(
            job.map_input_records > 0
                || job.job_name.contains("covariances")
                || job.job_name.contains("candidate-generation"),
            "job {} read nothing",
            job.job_name
        );
    }
    // Data-proportional jobs read the whole dataset.
    let hist = &metrics.jobs()[0];
    assert_eq!(hist.map_input_records, 2500);
}

#[test]
fn light_pipeline_moves_less_data_than_full() {
    let d = data();
    let eng_full = Engine::new(MrConfig {
        split_size: 512,
        ..MrConfig::default()
    });
    let eng_light = Engine::new(MrConfig {
        split_size: 512,
        ..MrConfig::default()
    });
    P3cPlusMr::new(&eng_full, P3cParams::default())
        .cluster(&d.dataset)
        .unwrap();
    P3cPlusMrLight::new(&eng_light, P3cParams::default())
        .cluster(&d.dataset)
        .unwrap();
    let full = eng_full.cluster_metrics();
    let light = eng_light.cluster_metrics();
    assert!(light.num_jobs() < full.num_jobs());
    assert!(
        light.total_map_input_records() < full.total_map_input_records(),
        "light should scan the data fewer times ({} vs {})",
        light.total_map_input_records(),
        full.total_map_input_records()
    );
}

#[test]
fn dataset_stages_through_the_block_store() {
    // The HDFS-lite path: serialize the dataset, store it as replicated
    // blocks, read it back, cluster it — identical results.
    let d = data();
    let store = BlockStore::new(64 * 1024, 3);
    let bytes = persist::to_bytes(&d.dataset);
    store.write("dataset.bin", &bytes);
    assert!(store.num_blocks("dataset.bin").unwrap() > 1);
    assert_eq!(store.bytes_written(), (bytes.len() * 3) as u64);

    let restored = persist::from_bytes(&store.read("dataset.bin").unwrap()).unwrap();
    assert_eq!(restored, d.dataset);

    let engine = Engine::with_defaults();
    let from_store = P3cPlusMrLight::new(&engine, P3cParams::default())
        .cluster(&restored)
        .unwrap();
    let direct = P3cPlusMrLight::new(&engine, P3cParams::default())
        .cluster(&d.dataset)
        .unwrap();
    assert_eq!(from_store.clustering, direct.clustering);
}
