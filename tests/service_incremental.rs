//! The incremental clustering service's contracts (DESIGN.md §14).
//!
//! * **Byte-identity** — after any schedule of appends and retracts,
//!   `recluster` returns exactly the model a from-scratch
//!   `P3cPlusLight` fit produces on the cumulative data: equal
//!   `Clustering` (bit-for-bit interval bounds), equal cores, equal
//!   pipeline stats. Randomized schedules are driven by proptest.
//! * **Sublinear lineage** — an append-only stream with a stable core
//!   set takes the fast finalization path and answers core-generation
//!   levels from the support cache instead of scanning.
//! * **LRU spill** — under a tight store budget, multi-tenant streams
//!   force evictions and spill reloads through the segmented codec,
//!   and the models remain byte-identical to batch.

use p3c_suite::core::config::P3cParams;
use p3c_suite::core::incremental::{IncrementalLight, ReclusterPath};
use p3c_suite::core::p3cplus::{P3cPlusLight, P3cResult};
use p3c_suite::datagen::{generate, SyntheticSpec};
use p3c_suite::dataset::{Dataset, RowBlock};
use p3c_suite::mapreduce::{ClusterService, DatasetStore};
use proptest::prelude::*;
use std::sync::Arc;

fn spec(n: usize, d: usize, k: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        n,
        d,
        num_clusters: k,
        noise_fraction: 0.1,
        max_cluster_dims: 4.min(d),
        seed,
        ..SyntheticSpec::default()
    }
}

fn chunk(block: &RowBlock, start: usize, len: usize) -> RowBlock {
    let rows: Vec<Vec<f64>> = (start..start + len)
        .map(|i| block.row(i).to_vec())
        .collect();
    RowBlock::from_rows(&rows)
}

fn batch(cumulative: RowBlock, params: &P3cParams) -> P3cResult {
    P3cPlusLight::new(params.clone()).cluster(&Dataset::from(cumulative))
}

/// Full-result equality: clustering (memberships, subspaces, interval
/// bounds bit-for-bit via `AttrInterval: PartialEq` on f64), cores, and
/// the pipeline stats batch would report.
fn assert_identical(tag: &str, inc: &P3cResult, bat: &P3cResult) {
    assert_eq!(inc.clustering, bat.clustering, "{tag}: clustering differs");
    assert_eq!(inc.cores, bat.cores, "{tag}: cores differ");
    assert_eq!(inc.stats.bins, bat.stats.bins, "{tag}");
    assert_eq!(
        inc.stats.relevant_intervals, bat.stats.relevant_intervals,
        "{tag}"
    );
    assert_eq!(inc.stats.cores, bat.stats.cores, "{tag}");
    assert_eq!(inc.stats.outliers, bat.stats.outliers, "{tag}");
    assert_eq!(
        inc.stats.core_gen.candidates_per_level, bat.stats.core_gen.candidates_per_level,
        "{tag}"
    );
    assert_eq!(
        inc.stats.redundancy_removed, bat.stats.redundancy_removed,
        "{tag}"
    );
}

/// One schedule step: append a chunk of the stream or retract the
/// oldest live block.
#[derive(Debug, Clone, Copy)]
enum Step {
    Append(usize),
    RetractOldest,
}

fn run_schedule(steps: &[Step], d: usize, seed: u64, store: &DatasetStore) {
    let params = P3cParams::default();
    let total: usize = steps
        .iter()
        .map(|s| match s {
            Step::Append(n) => *n,
            Step::RetractOldest => 0,
        })
        .sum();
    let data = generate(&spec(total.max(1), d, 3, seed));
    let all = RowBlock::from(data.dataset);
    let mut eng = IncrementalLight::new(format!("sched-{seed}"), params.clone());
    let mut fed = 0usize;
    // (id, start, len) of live blocks, oldest first.
    let mut live: Vec<(u64, usize, usize)> = Vec::new();
    for (step_no, step) in steps.iter().enumerate() {
        match step {
            Step::Append(len) => {
                let id = eng.append(store, chunk(&all, fed, *len)).unwrap();
                live.push((id, fed, *len));
                fed += len;
            }
            Step::RetractOldest => {
                if let Some((id, _, _)) = live.first().copied() {
                    assert!(eng.retract(store, id).unwrap());
                    live.remove(0);
                }
            }
        }
        let outcome = eng.recluster(store).unwrap();
        let refs: Vec<&RowBlock> = Vec::new();
        let mut cumulative = RowBlock::concat(&refs);
        if !live.is_empty() {
            let blocks: Vec<RowBlock> = live
                .iter()
                .map(|&(_, start, len)| chunk(&all, start, len))
                .collect();
            let refs: Vec<&RowBlock> = blocks.iter().collect();
            cumulative = RowBlock::concat(&refs);
        }
        let expected = batch(cumulative, &params);
        assert_identical(
            &format!("seed {seed} step {step_no}"),
            &outcome.result,
            &expected,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any interleaving of appends and retracts stays byte-identical to
    /// a from-scratch batch run at every single recluster.
    #[test]
    fn random_schedules_match_batch(
        seed in 0u64..1000,
        raw_steps in proptest::collection::vec((0u8..4, 200usize..700), 3..7),
    ) {
        // Op 0 retracts the oldest live block (1-in-4 weight); the rest
        // append a fresh chunk of the stream.
        let steps: Vec<Step> = raw_steps
            .iter()
            .map(|&(op, len)| if op == 0 { Step::RetractOldest } else { Step::Append(len) })
            .collect();
        let store = DatasetStore::new();
        run_schedule(&steps, 8, seed, &store);
    }
}

#[test]
fn append_only_stream_goes_fast_and_sublinear_in_scans() {
    // Sturges keeps its bin count constant between powers of two, so a
    // stream inside one plateau (4500..8000 rows → 14 bins throughout)
    // exercises pure delta maintenance: no histogram rebuild, a warm
    // support cache, and cores whose signatures survive each append.
    let params = P3cParams {
        bin_rule: p3c_suite::core::BinRuleChoice::Sturges,
        ..P3cParams::default()
    };
    let data = generate(&spec(8000, 8, 3, 42));
    let all = RowBlock::from(data.dataset);
    let store = DatasetStore::new();
    let mut eng = IncrementalLight::new("stream", params.clone());
    eng.append(&store, chunk(&all, 0, 4500)).unwrap();
    let mut fed = 4500;
    eng.recluster(&store).unwrap();
    let mut fast_seen = 0;
    for step in [700, 700, 700, 700, 700] {
        eng.append(&store, chunk(&all, fed, step)).unwrap();
        fed += step;
        let outcome = eng.recluster(&store).unwrap();
        let expected = batch(chunk(&all, 0, fed), &params);
        assert_identical(&format!("n={fed}"), &outcome.result, &expected);
        if outcome.path == ReclusterPath::Fast {
            fast_seen += 1;
        }
    }
    assert!(
        fast_seen >= 1,
        "append-only stream with stable cores never finalized from maintained state: {:?}",
        eng.stats()
    );
    let s = eng.stats();
    assert!(
        s.cached_levels > 0,
        "support cache never answered a whole level: {s:?}"
    );
}

#[test]
fn lru_eviction_reload_stays_identical() {
    // Budget far below the combined working set of two tenants: blocks
    // spill through the segmented codec and reload on demand.
    let params = P3cParams::default();
    let store = Arc::new(DatasetStore::with_budget(120_000));
    let service: ClusterService<IncrementalLight> = ClusterService::new(Arc::clone(&store), None);
    let data_a = generate(&spec(3000, 8, 3, 1));
    let data_b = generate(&spec(3000, 8, 3, 2));
    let all_a = RowBlock::from(data_a.dataset);
    let all_b = RowBlock::from(data_b.dataset);
    service
        .create("a", IncrementalLight::new("a", params.clone()))
        .unwrap();
    service
        .create("b", IncrementalLight::new("b", params.clone()))
        .unwrap();
    let mut fed = 0;
    for step in [1000, 1000, 1000] {
        service.append("a", chunk(&all_a, fed, step)).unwrap();
        service.append("b", chunk(&all_b, fed, step)).unwrap();
        fed += step;
        // Alternating tenants under a tight budget: each recluster
        // evicts the other tenant's blocks and reloads its own.
        let out_a = service.recluster("a").unwrap();
        let out_b = service.recluster("b").unwrap();
        assert_identical(
            &format!("tenant a n={fed}"),
            &out_a.result,
            &batch(chunk(&all_a, 0, fed), &params),
        );
        assert_identical(
            &format!("tenant b n={fed}"),
            &out_b.result,
            &batch(chunk(&all_b, 0, fed), &params),
        );
    }
    let stats = store.stats();
    assert!(stats.evictions > 0, "budget never evicted: {stats:?}");
    assert!(stats.spills > 0, "nothing spilled: {stats:?}");
    assert!(
        stats.spill_loads > 0,
        "spilled blocks never reloaded: {stats:?}"
    );
    let m = service.metrics();
    assert_eq!(m.appends, 6);
    assert_eq!(m.reclusters, 6);
}

#[test]
fn concurrent_tenants_cluster_independently() {
    let params = P3cParams::default();
    let service: Arc<ClusterService<IncrementalLight>> = Arc::new(ClusterService::new(
        Arc::new(DatasetStore::new()),
        Some(1 << 26),
    ));
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let service = Arc::clone(&service);
        let params = params.clone();
        handles.push(std::thread::spawn(move || {
            let name = format!("tenant-{t}");
            let data = generate(&spec(2400, 6, 2, 100 + t));
            let all = RowBlock::from(data.dataset);
            service
                .create(&name, IncrementalLight::new(&name, params.clone()))
                .unwrap();
            let mut fed = 0;
            for step in [800, 800, 800] {
                service.append(&name, chunk(&all, fed, step)).unwrap();
                fed += step;
                let outcome = service.recluster(&name).unwrap();
                let expected = batch(chunk(&all, 0, fed), &params);
                assert_identical(&format!("{name} n={fed}"), &outcome.result, &expected);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(service.metrics().reclusters, 9);
    assert_eq!(service.names().len(), 3);
}

#[test]
fn retract_then_append_recovers_fast_path_eventually() {
    // After a retract forces a full rebuild, subsequent append-only
    // reclusters may re-arm the fast path once the state is rebuilt.
    let params = P3cParams::default();
    let data = generate(&spec(5000, 8, 3, 9));
    let all = RowBlock::from(data.dataset);
    let store = DatasetStore::new();
    let mut eng = IncrementalLight::new("t", params.clone());
    let a = eng.append(&store, chunk(&all, 0, 1000)).unwrap();
    eng.append(&store, chunk(&all, 1000, 1500)).unwrap();
    eng.recluster(&store).unwrap();
    assert!(eng.retract(&store, a).unwrap());
    let outcome = eng.recluster(&store).unwrap();
    assert_eq!(outcome.path, ReclusterPath::Full, "retract dirties lineage");
    // The cumulative stream is now rows 1000..2500; extend it and keep
    // checking identity on the shifted stream.
    let mut live: Vec<(usize, usize)> = vec![(1000, 1500)];
    let mut fed = 2500;
    for step in [800, 800] {
        eng.append(&store, chunk(&all, fed, step)).unwrap();
        live.push((fed, step));
        fed += step;
        let outcome = eng.recluster(&store).unwrap();
        let blocks: Vec<RowBlock> = live.iter().map(|&(s, l)| chunk(&all, s, l)).collect();
        let refs: Vec<&RowBlock> = blocks.iter().collect();
        let expected = batch(RowBlock::concat(&refs), &params);
        assert_identical(&format!("post-retract n={fed}"), &outcome.result, &expected);
    }
}
